#include "core/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "nvsim/tech_backend.hpp"
#include "util/require.hpp"

namespace respin::core {

namespace {
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();
/// Private store path: buffer depth before the core stalls on stores.
constexpr std::uint32_t kPrivateStoreBufferDepth = 8;
}  // namespace

ClusterSim::ClusterSim(ClusterConfig config,
                       const workload::WorkloadSpec& spec,
                       const SimParams& params)
    : ClusterSim(std::move(config), spec.name,
                 workload::synthetic_factory(spec, params.workload_scale,
                                             params.seed),
                 params) {}

ClusterSim::ClusterSim(ClusterConfig config, std::string benchmark_name,
                       const workload::OpSourceFactory& sources,
                       const SimParams& params)
    : cfg_(std::move(config)),
      params_(params),
      benchmark_name_(std::move(benchmark_name)),
      backside_(cfg_.backside) {
  RESPIN_REQUIRE(cfg_.multipliers.size() == cfg_.cluster_cores,
                 "config must carry one multiplier per core");

  // One virtual core (thread) per physical core, as in the paper.
  vcores_.reserve(cfg_.cluster_cores);
  cores_.resize(cfg_.cluster_cores);
  core_next_tick_.resize(cfg_.cluster_cores);
  parked_at_.assign(cfg_.cluster_cores, kNever);
  host_of_.resize(cfg_.cluster_cores);
  for (std::uint32_t c = 0; c < cfg_.cluster_cores; ++c) {
    vcores_.emplace_back(sources(c, cfg_.cluster_cores));
    RESPIN_REQUIRE(static_cast<bool>(vcores_.back().work),
                   "op-source factory returned an empty stream");
    vcores_.back().until_fetch = cfg_.core_timing.instructions_per_fetch;
    cores_[c].multiplier = cfg_.multipliers[c];
    cores_[c].powered_on = true;
    cores_[c].vcores = {c};
    core_next_tick_[c] = cores_[c].multiplier;  // First boundary.
    cores_[c].quantum_remaining = cfg_.core_timing.hw_quantum_instructions;
    cores_[c].os_next_switch = cfg_.os_quantum_cycles;
    host_of_[c] = c;
  }
  efficiency_order_ = efficiency_ranking(cfg_.multipliers);
  active_count_ = cfg_.cluster_cores;
  powered_cores_ = cfg_.cluster_cores;

  if (cfg_.shared_l1) {
    dl1_ctrl_.emplace(cfg_.controller, params.seed);
    l1i_.emplace(cfg_.l1_shared_capacity, cfg_.l1_line_bytes, cfg_.l1i_ways);
    l1d_.emplace(cfg_.l1_shared_capacity, cfg_.l1_line_bytes, cfg_.l1d_ways);
    // Hybrid L1D: dedicate the first hybrid_sram_ways ways of every set to
    // SRAM (the L1I stays pure — ifetches never write).
    if (cfg_.hybrid_sram_ways > 0) {
      l1d_->set_way_partition(cfg_.hybrid_sram_ways);
    }
    pending_reads_.resize(cfg_.cluster_cores);
  } else {
    private_l1_.emplace(cfg_.private_l1);
  }

  if (params_.faults.enabled) {
    // The technology's registered backend picks the active fault model:
    // static-cell technologies (SRAM, eDRAM) get voltage-dependent cell
    // maps — eDRAM with its retention margin shifting the Vccmin mean —
    // and write-retry technologies (STT-RAM, PCM) get stochastic write
    // draws, PCM at a wear-elevated rate. See docs/faults.md and
    // docs/technologies.md. For SRAM and STT-RAM the adjustments below
    // are exact no-ops (x1.0, +0.0), keeping fault runs bit-identical to
    // the pre-registry model.
    const nvsim::TechTraits tech_traits =
        nvsim::TechnologyRegistry::instance()
            .backend(cfg_.cache_tech)
            .traits();
    fault::FaultPlan plan = params_.faults;
    plan.stt.write_fail_prob *= tech_traits.write_fail_multiplier;
    plan.sram.vccmin_mean += tech_traits.vccmin_shift_v;
    injector_.emplace(plan, cfg_.vth_mean);
    // Write-retry draws are per-array-write and technology-wide; a hybrid
    // L1D mixes classes within one array, so retry injection is not yet
    // modeled there (documented limitation — docs/technologies.md).
    stt_write_faults_ = tech_traits.write_retry_faults &&
                        plan.stt.write_fail_prob > 0.0 &&
                        cfg_.hybrid_sram_ways == 0;
    if (tech_traits.static_cell_faults) {
      std::vector<double> vths(cfg_.cluster_cores, cfg_.vth_mean);
      for (std::size_t c = 0; c < vths.size() && c < cfg_.core_vth.size();
           ++c) {
        vths[c] = cfg_.core_vth[c];
      }
      if (cfg_.shared_l1) {
        // The shared arrays sit in one physical bank; the slowest
        // (highest-Vth) region they span governs their margin.
        const double worst = *std::max_element(vths.begin(), vths.end());
        l1i_->apply_fault_map(injector_->sram_line_map(
            "l1i", l1i_->set_count(), l1i_->ways(), cfg_.l1_line_bytes,
            cfg_.cache_vdd, worst));
        l1d_->apply_fault_map(injector_->sram_line_map(
            "l1d", l1d_->set_count(), l1d_->ways(), cfg_.l1_line_bytes,
            cfg_.cache_vdd, worst));
      } else {
        private_l1_->apply_sram_fault_maps(*injector_, cfg_.cache_vdd, vths);
      }
    }
    if (private_l1_) {
      private_l1_->configure_faults(params_.faults.ecc.correction_cycles,
                                    stt_write_faults_,
                                    params_.faults.stt.retry_cycles);
    }
  }

  if (cfg_.governor != GovernorKind::kNone) {
    governor_.emplace(cfg_.governor_params, cfg_.cluster_cores);
  }
  next_epoch_instructions_ = cfg_.governor_params.epoch_instructions;
  next_epoch_cycle_ = cfg_.os_epoch_cycles;

  next_core_tick_ = kNever;
  for (const std::int64_t tick : core_next_tick_) {
    next_core_tick_ = std::min(next_core_tick_, tick);
  }
  epoch_watched_ = cfg_.governor != GovernorKind::kNone;
}

std::int64_t ClusterSim::next_boundary_after(std::uint32_t pid,
                                             std::int64_t ready) const {
  // The first core-cycle boundary of core `pid` at or after `ready`,
  // measured from its boundary phase (boundaries are at k * multiplier).
  const std::int64_t m = cores_[pid].multiplier;
  return ((ready + m - 1) / m) * m;
}

void ClusterSim::run() {
  while (!done()) {
    if (now_ >= params_.max_cycles) break;
    step_cycle();
    if (governor_ && cfg_.governor != GovernorKind::kOracle &&
        at_epoch_boundary()) {
      on_epoch_boundary();
    }
  }
  // A run cut short by max_cycles can leave cores parked on a barrier
  // that never completed; credit the idle polls they would have executed
  // up to the horizon so the counters match the cycle-by-cycle clock.
  for (std::uint32_t c = 0; c < cores_.size(); ++c) {
    if (parked_at_[c] == kNever) continue;
    core_next_tick_[c] = parked_at_[c];
    parked_at_[c] = kNever;
    jump_idle_to(c, params_.max_cycles);
  }
  sync_power_integral();
}

bool ClusterSim::run_one_epoch() {
  // An external driver (oracle) is watching epoch boundaries, so the
  // event-driven clock must stop on them from here on.
  epoch_watched_ = true;
  while (!done()) {
    if (now_ >= params_.max_cycles) break;
    step_cycle();
    if (at_epoch_boundary()) {
      // Close the epoch's books but let the caller decide the next count.
      const power::ActivityCounts delta = current_counts() - epoch_counts_;
      const power::EnergyBreakdown energy =
          power::compute_energy(cfg_.power, delta,
                                (now_ - epoch_start_) *
                                    cfg_.clocking.cache_period);
      last_epoch_epi_ =
          power::energy_per_instruction(energy, delta.instructions);
      trace_.push_back(ConsolidationSample{now_, active_count_,
                                           last_epoch_epi_});
      active_stat_.add(active_count_);
      emit_epoch_event();
      epoch_counts_ = current_counts();
      epoch_start_ = now_;
      next_epoch_instructions_ =
          counts_.instructions + cfg_.governor_params.epoch_instructions;
      next_epoch_cycle_ = now_ + cfg_.os_epoch_cycles;
      return true;
    }
  }
  sync_power_integral();
  return false;
}

bool ClusterSim::at_epoch_boundary() const {
  if (cfg_.governor == GovernorKind::kOs) {
    return now_ >= next_epoch_cycle_;
  }
  return counts_.instructions >= next_epoch_instructions_;
}

void ClusterSim::on_epoch_boundary() {
  const power::ActivityCounts delta = current_counts() - epoch_counts_;
  const power::EnergyBreakdown energy = power::compute_energy(
      cfg_.power, delta, (now_ - epoch_start_) * cfg_.clocking.cache_period);
  last_epoch_epi_ =
      power::energy_per_instruction(energy, delta.instructions);
  trace_.push_back(
      ConsolidationSample{now_, active_count_, last_epoch_epi_});
  active_stat_.add(active_count_);
  emit_epoch_event();

  if (governor_) {
    const std::uint32_t target =
        governor_->decide(last_epoch_epi_, active_count_);
    if (target != active_count_) apply_active_count(target);
  }

  epoch_counts_ = current_counts();
  epoch_start_ = now_;
  next_epoch_instructions_ =
      counts_.instructions + cfg_.governor_params.epoch_instructions;
  next_epoch_cycle_ = now_ + cfg_.os_epoch_cycles;
}

void ClusterSim::step_cycle() {
  if (dl1_ctrl_) {
    serviced_scratch_.clear();
    dl1_ctrl_->step(now_, serviced_scratch_);
    for (const ServicedRead& s : serviced_scratch_) handle_serviced_read(s);
  }
  while (!fill_events_.empty() && fill_events_.top().cycle <= now_) {
    const FillEvent event = fill_events_.top();
    fill_events_.pop();
    apply_fill(event);
  }
  if (now_ >= next_core_tick_) {
    std::int64_t next = kNever;
    for (std::uint32_t pid = 0; pid < cores_.size(); ++pid) {
      if (core_next_tick_[pid] == now_) step_core(pid);
      next = std::min(next, core_next_tick_[pid]);
    }
    if (tick_rescan_needed_) {
      // A barrier completion unparked waiters behind the fold point, so
      // the single-pass minimum may be stale: rescan.
      tick_rescan_needed_ = false;
      next = kNever;
      for (const std::int64_t tick : core_next_tick_) {
        next = std::min(next, tick);
      }
    }
    next_core_tick_ = next;
  }
  advance_clock();
}

void ClusterSim::advance_clock() {
  const std::int64_t next = now_ + 1;
  std::int64_t target = next;
  // Event-driven clock: jump to the soonest cycle where anything can
  // change — a core tick, a fill-event return, the shared-cache
  // controller's next activity (a request becoming visible or a drain
  // opportunity; while a visible read waits it arbitrates and ages
  // priority registers every cycle, so the jump collapses to +1), and
  // (when observed) an epoch boundary. No jump once the workload has
  // completed: the run loop exits at the next cycle, and the finish time
  // must match the cycle-by-cycle clock.
  if (params_.cycle_skip && !done()) {
    target = next_core_tick_;
    if (!fill_events_.empty()) {
      target = std::min(target, fill_events_.top().cycle);
    }
    // The controller scan is the costliest bound, so consult it only when
    // the cheaper bounds leave room to jump at all.
    if (dl1_ctrl_ && target > next) {
      target = std::min(target, dl1_ctrl_->next_activity_cycle(now_));
    }
    if (epoch_watched_) {
      if (cfg_.governor == GovernorKind::kOs) {
        target = std::min(target, next_epoch_cycle_);
      } else if (counts_.instructions >= next_epoch_instructions_) {
        // An instruction-count boundary is already pending; the caller
        // handles it at now_ + 1 exactly as the cycle-by-cycle clock does.
        target = next;
      }
    }
    target = std::min(target, params_.max_cycles);
    target = std::max(target, next);
    if (dl1_ctrl_ && target > next) {
      dl1_ctrl_->note_skipped_cycles(target - next);
    }
  }
  now_ = target;
}

void ClusterSim::step_core(std::uint32_t pid) {
  cpu::PhysicalCore& p = cores_[pid];
  const std::int64_t m = p.multiplier;
  core_next_tick_[pid] = now_ + m;

  if (!p.powered_on) return;
  if (p.stalled_until > now_) {
    ++p.idle_cycles;
    return;
  }
  if (p.vcores.empty()) {
    ++p.idle_cycles;
    return;
  }

  // Forced timeslice rotation.
  const bool os_mode = cfg_.governor == GovernorKind::kOs;
  if (p.vcores.size() > 1) {
    if (os_mode) {
      if (now_ >= p.os_next_switch) {
        rotate_vcore(pid, cfg_.core_timing.os_switch_cycles);
        p.os_next_switch = now_ + cfg_.os_quantum_cycles;
        ++p.idle_cycles;
        return;
      }
    } else if (p.quantum_remaining == 0) {
      rotate_vcore(pid, cfg_.core_timing.context_switch_cycles);
      ++p.idle_cycles;
      return;
    }
  }

  if (p.run_index >= p.vcores.size()) p.run_index = 0;
  const std::uint32_t vid = p.vcores[p.run_index];
  cpu::VirtualCore& v = vcores_[vid];

  switch (v.state) {
    case cpu::WaitState::kRunnable:
      execute_vcore(pid, vid);
      ++p.busy_cycles;
      fast_forward_idle(pid);
      return;
    case cpu::WaitState::kMemory:
      if (now_ >= v.mem_ready_cycle) {
        v.state = cpu::WaitState::kRunnable;
        if (v.mem_commit_pending) {
          v.mem_commit_pending = false;
          v.has_op = false;
          commit_instructions(pid, vid, 1);
        }
        // The next operation issues in the same cycle the data returns, so
        // a 1-core-cycle hit really costs one cycle.
        if (v.state == cpu::WaitState::kRunnable) execute_vcore(pid, vid);
        ++p.busy_cycles;
        fast_forward_idle(pid);
        return;
      }
      break;
    case cpu::WaitState::kBarrier:
      if (barrier_released(v)) {
        v.state = cpu::WaitState::kRunnable;
        execute_vcore(pid, vid);
        ++p.busy_cycles;
        fast_forward_idle(pid);
        return;
      }
      break;
    case cpu::WaitState::kStoreBuffer:
      if (issue_store(pid, vid)) {
        ++p.busy_cycles;
        fast_forward_idle(pid);
        return;
      }
      break;
    case cpu::WaitState::kFinished:
      if (p.vcores.size() > 1) {
        // A finished thread yields its slot immediately in both modes.
        p.run_index = (p.run_index + 1) % p.vcores.size();
      }
      break;
  }

  // Current vcore cannot progress: hardware mode switches on stall.
  ++p.idle_cycles;
  if (!os_mode && p.vcores.size() > 1) {
    try_context_switch(pid);
    return;
  }
  fast_forward_idle(pid);
}

void ClusterSim::fast_forward_idle(std::uint32_t pid) {
  // Idle-tick elision: a stalled core whose wake-up cycle is exactly
  // computable ticks only idle until then, so its next_tick can jump
  // straight there with the skipped ticks credited to idle_cycles in one
  // go. Requires a quiescent scheduling environment — a single resident
  // thread (no rotation or context-switch bookkeeping on intermediate
  // ticks) and no observed epochs (no mid-window power gating, migration
  // or boundary sampling that could see the pre-credited idles).
  if (!params_.cycle_skip || epoch_watched_) return;
  cpu::PhysicalCore& p = cores_[pid];
  if (p.vcores.size() != 1) return;
  const cpu::VirtualCore& v = vcores_[p.vcores.front()];
  std::int64_t ready = 0;
  switch (v.state) {
    case cpu::WaitState::kMemory:
      // kNever means the shared controller still holds the read; the
      // service cycle is unknown, so the core must keep polling.
      if (v.mem_ready_cycle == kNever) return;
      ready = v.mem_ready_cycle;
      break;
    case cpu::WaitState::kBarrier:
      // Only once the barrier has completed is the release cycle fixed
      // (no further arrival can move it: every other thread is past it).
      if (barrier_.completed < static_cast<std::int64_t>(v.barrier_id)) {
        return;
      }
      ready = barrier_.last_release;
      break;
    case cpu::WaitState::kStoreBuffer: {
      // Private path only: the drain backlog is this core's own state.
      // Shared-path retries go through the controller's store queue, whose
      // occupancy depends on the other cores.
      if (cfg_.shared_l1) return;
      const std::int64_t store_cost =
          static_cast<std::int64_t>(cfg_.private_store_cycles) *
          p.multiplier;
      ready = p.store_drain_free_at -
              kPrivateStoreBufferDepth * store_cost;
      break;
    }
    default:
      return;
  }
  jump_idle_to(pid, ready);
}

void ClusterSim::jump_idle_to(std::uint32_t pid, std::int64_t ready) {
  // Jump core `pid`'s next tick to its first boundary at or after `ready`,
  // crediting the boundary ticks in between as the idle polls the
  // cycle-by-cycle clock would have executed. Callers must have
  // established eligibility (cycle_skip on, no observed epochs, single
  // resident thread).
  cpu::PhysicalCore& p = cores_[pid];
  ready = std::max(ready, p.stalled_until);
  const std::int64_t wake = next_boundary_after(pid, ready);
  // Ticks past max_cycles never execute, so their idles are not credited.
  const std::int64_t limit =
      std::min(wake, next_boundary_after(pid, params_.max_cycles));
  const std::int64_t elided =
      (limit - core_next_tick_[pid]) / p.multiplier;
  if (wake <= core_next_tick_[pid]) return;
  if (elided > 0) p.idle_cycles += static_cast<std::uint64_t>(elided);
  core_next_tick_[pid] = wake;
}

void ClusterSim::elide_compute_ticks(std::uint32_t pid, std::uint32_t vid) {
  // Compute-burst elision: the interior of a compute run is a closed
  // per-core recurrence — each tick adds current_ipc to the issue
  // accumulator, commits the integer part, and touches nothing the rest
  // of the cluster can observe (no memory op, no barrier, no ifetch).
  // Replay that recurrence here, tick for tick in the exact same IEEE
  // arithmetic, and jump the core's next boundary past the elided ticks.
  // Boundary ticks (op completion or an ifetch trigger) are left to the
  // normal path so their side effects land on the right cycle. The
  // eligibility guards mirror fast_forward_idle(): a quiescent scheduling
  // environment with one resident thread and no observed epochs.
  if (!params_.cycle_skip || epoch_watched_) return;
  cpu::PhysicalCore& p = cores_[pid];
  if (p.vcores.size() != 1) return;
  cpu::VirtualCore& v = vcores_[vid];
  if (v.state != cpu::WaitState::kRunnable) return;

  const std::int64_t m = p.multiplier;
  std::int64_t tick = now_ + m;  // First candidate: the very next boundary.
  double acc = v.issue_accumulator;
  std::uint32_t remaining = v.compute_remaining;
  std::uint32_t until_fetch = v.until_fetch;
  std::uint64_t committed = 0;
  std::int64_t elided = 0;
  while (tick < params_.max_cycles) {
    // Evaluate the candidate tick without touching `acc`: a boundary tick
    // (op completion or ifetch trigger) must re-run this arithmetic on the
    // live vcore state, so its accumulator increment must not stick here.
    const double ticked = acc + v.current_ipc;
    const auto issued = static_cast<std::uint32_t>(ticked);
    if (issued >= remaining) break;    // Op-completion tick: run normally.
    if (until_fetch <= issued) break;  // Ifetch tick: run normally.
    acc = ticked - issued;
    remaining -= issued;
    until_fetch -= issued;
    committed += issued;
    ++elided;
    tick += m;
  }
  if (elided == 0) return;
  v.issue_accumulator = acc;
  v.compute_remaining = remaining;
  v.until_fetch = until_fetch;
  v.instructions += committed;
  counts_.instructions += committed;
  p.quantum_remaining -= std::min<std::uint64_t>(p.quantum_remaining,
                                                 committed);
  p.busy_cycles += static_cast<std::uint64_t>(elided);
  core_next_tick_[pid] = tick;
}

bool ClusterSim::try_context_switch(std::uint32_t pid) {
  cpu::PhysicalCore& p = cores_[pid];
  const std::size_t n = p.vcores.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    const std::size_t idx = (p.run_index + offset) % n;
    const cpu::VirtualCore& cand = vcores_[p.vcores[idx]];
    const bool progressable =
        cand.state == cpu::WaitState::kRunnable ||
        (cand.state == cpu::WaitState::kMemory &&
         now_ >= cand.mem_ready_cycle) ||
        cand.state == cpu::WaitState::kStoreBuffer ||
        (cand.state == cpu::WaitState::kBarrier && barrier_released(cand));
    if (progressable) {
      p.run_index = idx;
      p.quantum_remaining = cfg_.core_timing.hw_quantum_instructions;
      p.stalled_until =
          now_ + cfg_.core_timing.context_switch_cycles * p.multiplier;
      return true;
    }
  }
  return false;
}

void ClusterSim::rotate_vcore(std::uint32_t pid, std::uint32_t penalty) {
  cpu::PhysicalCore& p = cores_[pid];
  p.run_index = (p.run_index + 1) % p.vcores.size();
  p.quantum_remaining = cfg_.core_timing.hw_quantum_instructions;
  p.stalled_until = now_ + static_cast<std::int64_t>(penalty) * p.multiplier;
}

void ClusterSim::execute_vcore(std::uint32_t pid, std::uint32_t vid) {
  cpu::VirtualCore& v = vcores_[vid];

  if (!v.has_op) {
    v.op = v.work.next();
    v.has_op = true;
    if (v.op.kind == workload::OpKind::kCompute) {
      v.compute_remaining = v.op.count;
      v.current_ipc = std::min(
          v.op.ipc, static_cast<double>(cfg_.core_timing.issue_width));
      v.issue_accumulator = 0.0;
    }
  }

  switch (v.op.kind) {
    case workload::OpKind::kFinished:
      v.state = cpu::WaitState::kFinished;
      v.has_op = false;
      ++finished_vcores_;
      return;
    case workload::OpKind::kCompute: {
      v.issue_accumulator += v.current_ipc;
      auto issued = static_cast<std::uint32_t>(v.issue_accumulator);
      issued = std::min(issued, v.compute_remaining);
      v.issue_accumulator -= issued;
      v.compute_remaining -= issued;
      if (v.compute_remaining == 0) v.has_op = false;
      if (issued > 0) commit_instructions(pid, vid, issued);
      if (v.has_op) elide_compute_ticks(pid, vid);
      return;
    }
    case workload::OpKind::kLoad:
      issue_load(pid, vid);
      return;
    case workload::OpKind::kStore:
      if (!issue_store(pid, vid)) v.state = cpu::WaitState::kStoreBuffer;
      return;
    case workload::OpKind::kBarrier:
      arrive_barrier(pid, vid);
      return;
  }
}

void ClusterSim::issue_load(std::uint32_t pid, std::uint32_t vid) {
  cpu::VirtualCore& v = vcores_[vid];
  const mem::Addr addr = v.op.addr;

  if (cfg_.shared_l1) {
    if (pending_reads_[pid].valid) {
      // Structural hazard: the per-core request register still holds the
      // previous (context-switched-out) thread's read. Retry next cycle.
      v.state = cpu::WaitState::kMemory;
      v.mem_commit_pending = false;
      v.mem_ready_cycle = now_ + cores_[pid].multiplier;
      return;
    }
    dl1_ctrl_->submit_read(pid,
                           static_cast<std::uint32_t>(cores_[pid].multiplier),
                           now_);
    pending_reads_[pid] = PendingRead{true, vid, addr};
    if (cfg_.l1_crosses_domains) ++counts_.level_shifter_crossings;
    v.state = cpu::WaitState::kMemory;
    v.mem_ready_cycle = kNever;  // Set when the controller services it.
    v.mem_commit_pending = true;
    return;
  }

  const mem::PrivateAccessResult res = private_l1_->access(
      pid, addr, mem::AccessType::kLoad, backside_, fault_injector());
  if (cfg_.l1_crosses_domains) ++counts_.level_shifter_crossings;
  if (res.l1_hit && res.extra_cycles == 0) {
    // One-core-cycle hit: commit immediately.
    v.has_op = false;
    commit_instructions(pid, vid, 1);
    return;
  }
  v.state = cpu::WaitState::kMemory;
  v.mem_ready_cycle =
      std::max(next_boundary_after(pid, now_ + res.extra_cycles),
               now_ + cores_[pid].multiplier);
  v.mem_commit_pending = true;
}

bool ClusterSim::issue_store(std::uint32_t pid, std::uint32_t vid) {
  cpu::VirtualCore& v = vcores_[vid];
  const mem::Addr addr = v.op.addr;

  if (cfg_.shared_l1) {
    if (!dl1_ctrl_->submit_store(now_)) return false;
    if (cfg_.l1_crosses_domains) ++counts_.level_shifter_crossings;
    ++counts_.l1_writes;
    // Write-allocate: a store miss pulls the line in off the critical path
    // (the store buffer hides the fill latency).
    const mem::LineAddr line = mem::line_of(addr, cfg_.l1_line_bytes);
    bool corrected = false;
    bool sram_way = false;
    if (auto state = l1d_->access(line, &corrected, &sram_way)) {
      (void)state;
      if (sram_way) ++counts_.l1_sram_writes;
      l1d_->set_state(line, mem::Mesi::kModified);
      if (corrected && injector_) {
        // Read-modify-write of a SECDED-corrected word; the store buffer
        // hides the latency but the extra array read costs energy.
        injector_->note_correction();
        ++counts_.l1_reads;
        if (sram_way) ++counts_.l1_sram_reads;
      }
      if (stt_write_faults_) {
        bool exhausted = false;
        const std::uint32_t retries = injector_->draw_write_retries(&exhausted);
        counts_.l1_writes += retries;
        if (exhausted) {
          // Repeated write failure on a resident cell: retire the way and
          // write the store's data through to the backside instead.
          l1d_->disable_line(line);
          injector_->note_line_disabled();
          backside_.writeback(addr);
        }
      }
    } else {
      const mem::FillResult fill = backside_.fill(addr);
      std::int64_t latency = fill.latency_cycles;
      std::uint32_t retries = 0;
      bool exhausted = false;
      if (stt_write_faults_) {
        retries = injector_->draw_write_retries(&exhausted);
        latency += static_cast<std::int64_t>(retries) *
                   params_.faults.stt.retry_cycles;
      }
      fill_events_.push(FillEvent{now_ + latency, addr, /*instruction=*/false,
                                  retries, /*drop=*/exhausted,
                                  /*store=*/true});
    }
    v.state = cpu::WaitState::kRunnable;
    v.has_op = false;
    commit_instructions(pid, vid, 1);
    return true;
  }

  // Private path: the store buffer drains through the L1 write port; the
  // core stalls only when the buffer backlog exceeds its depth.
  cpu::PhysicalCore& p = cores_[pid];
  const std::int64_t m = p.multiplier;
  const std::int64_t store_cost =
      static_cast<std::int64_t>(cfg_.private_store_cycles) * m;
  const std::int64_t window = kPrivateStoreBufferDepth * store_cost;
  if (p.store_drain_free_at - now_ > window) return false;

  const mem::PrivateAccessResult res = private_l1_->access(
      pid, addr, mem::AccessType::kStore, backside_, fault_injector());
  if (cfg_.l1_crosses_domains) ++counts_.level_shifter_crossings;
  p.store_drain_free_at = std::max(p.store_drain_free_at, now_) + store_cost +
                          res.extra_cycles;
  v.state = cpu::WaitState::kRunnable;
  v.has_op = false;
  commit_instructions(pid, vid, 1);
  return true;
}

void ClusterSim::arrive_barrier(std::uint32_t pid, std::uint32_t vid) {
  cpu::VirtualCore& v = vcores_[vid];
  // The arrival update (fetch-and-increment on the barrier line)
  // serializes across arriving cores; under private caches each arrival is
  // an ownership transfer (directory round trip), under the shared L1 it
  // is a couple of fast-cache cycles.
  const std::int64_t arrival_done =
      std::max(barrier_.line_free_at, now_) + cfg_.barrier_arrival_cycles;
  barrier_.line_free_at = arrival_done;
  barrier_.latest_arrival = std::max(barrier_.latest_arrival, arrival_done);
  counts_.coherence_messages += cfg_.barrier_arrival_messages;

  v.state = cpu::WaitState::kBarrier;
  v.barrier_id = v.op.addr;
  v.has_op = false;
  ++barrier_.arrived;

  if (barrier_.arrived < vcores_.size()) {
    // The waiter cannot progress until the last thread arrives, and that
    // arrival is another core's tick: park this core (no boundary polls at
    // all) and let the completion branch below credit the skipped polls
    // and schedule the wake-up. Same eligibility as fast_forward_idle.
    if (params_.cycle_skip && !epoch_watched_ &&
        cores_[pid].vcores.size() == 1) {
      parked_at_[pid] = core_next_tick_[pid];
      core_next_tick_[pid] = kNever;
    }
    return;
  }

  barrier_.completed = static_cast<std::int64_t>(v.barrier_id);
  barrier_.last_release =
      barrier_.latest_arrival + cfg_.barrier_release_cycles +
      cfg_.barrier_post_release_cycles;
  barrier_.arrived = 0;
  barrier_.latest_arrival = 0;
  // Release invalidates every waiter's cached flag copy (private mode).
  counts_.coherence_messages +=
      cfg_.barrier_arrival_messages * vcores_.size();

  // The release cycle is now fixed: wake every parked waiter, crediting
  // the boundary polls it skipped while parked as the idle ticks the
  // cycle-by-cycle clock would have executed. The arriving core itself
  // was never parked; its step_core tail jumps it to the release.
  for (std::uint32_t c = 0; c < cores_.size(); ++c) {
    if (parked_at_[c] == kNever) continue;
    core_next_tick_[c] = parked_at_[c];
    parked_at_[c] = kNever;
    jump_idle_to(c, barrier_.last_release);
  }
  tick_rescan_needed_ = true;
}

bool ClusterSim::barrier_released(const cpu::VirtualCore& v) const {
  return barrier_.completed >= static_cast<std::int64_t>(v.barrier_id) &&
         now_ >= barrier_.last_release;
}

void ClusterSim::commit_instructions(std::uint32_t pid, std::uint32_t vid,
                                     std::uint32_t n) {
  cpu::VirtualCore& v = vcores_[vid];
  cpu::PhysicalCore& p = cores_[pid];
  v.instructions += n;
  counts_.instructions += n;
  p.quantum_remaining -= std::min<std::uint64_t>(p.quantum_remaining, n);

  if (v.until_fetch <= n) {
    v.until_fetch += cfg_.core_timing.instructions_per_fetch;
    do_ifetch(pid, vid);
  }
  v.until_fetch -= n;
}

void ClusterSim::do_ifetch(std::uint32_t pid, std::uint32_t vid) {
  cpu::VirtualCore& v = vcores_[vid];
  const mem::Addr addr = v.work.next_ifetch_addr();

  if (cfg_.shared_l1) {
    ++counts_.l1_reads;
    if (cfg_.l1_crosses_domains) ++counts_.level_shifter_crossings;
    const mem::LineAddr line = mem::line_of(addr, cfg_.l1_line_bytes);
    bool corrected = false;
    if (l1i_->access(line, &corrected).has_value()) {
      if (corrected && injector_) {
        // The fetched word round-trips SECDED before issue resumes.
        injector_->note_correction();
        ++counts_.l1_reads;
        v.state = cpu::WaitState::kMemory;
        v.mem_ready_cycle = next_boundary_after(
            pid, now_ + params_.faults.ecc.correction_cycles);
        v.mem_commit_pending = false;
      }
      return;  // Overlapped fetch.
    }
    const mem::FillResult fill = backside_.fill(addr);
    std::int64_t extra = 0;
    if (l1i_->can_insert(line)) {
      ++counts_.l1_writes;
      bool exhausted = false;
      if (stt_write_faults_) {
        const std::uint32_t retries = injector_->draw_write_retries(&exhausted);
        counts_.l1_writes += retries;
        extra = static_cast<std::int64_t>(retries) *
                params_.faults.stt.retry_cycles;
      }
      // An exhausted fill write is dropped; the fetch itself still
      // completes from the L2 copy.
      if (!exhausted) l1i_->insert(line, mem::Mesi::kExclusive);
    }
    v.state = cpu::WaitState::kMemory;
    v.mem_ready_cycle =
        next_boundary_after(pid, now_ + fill.latency_cycles + extra + 2);
    v.mem_commit_pending = false;
    return;
  }

  const mem::PrivateAccessResult res = private_l1_->access(
      pid, addr, mem::AccessType::kIfetch, backside_, fault_injector());
  if (cfg_.l1_crosses_domains) ++counts_.level_shifter_crossings;
  if (!res.l1_hit || res.extra_cycles > 0) {
    v.state = cpu::WaitState::kMemory;
    v.mem_ready_cycle = next_boundary_after(pid, now_ + res.extra_cycles);
    v.mem_commit_pending = false;
  }
}

void ClusterSim::handle_serviced_read(const ServicedRead& serviced) {
  PendingRead& pending = pending_reads_[serviced.core];
  RESPIN_REQUIRE(pending.valid, "controller serviced a phantom read");
  cpu::VirtualCore& v = vcores_[pending.vcore];
  const std::int64_t m = cores_[serviced.core].multiplier;

  ++counts_.l1_reads;
  const mem::LineAddr line = mem::line_of(pending.addr, cfg_.l1_line_bytes);
  bool corrected = false;
  bool sram_way = false;
  const bool hit = l1d_->access(line, &corrected, &sram_way).has_value();
  if (hit) {
    if (sram_way) ++counts_.l1_sram_reads;
    std::int64_t latency_cycles =
        serviced.serviced_at + 1 - serviced.issued_at;
    if (corrected && injector_) {
      // SECDED round trip before the data is usable: the hit gets slower
      // and the array is read again after the fix.
      injector_->note_correction();
      ++counts_.l1_reads;
      if (sram_way) ++counts_.l1_sram_reads;
      latency_cycles += params_.faults.ecc.correction_cycles;
    }
    const auto core_cycles =
        static_cast<std::uint64_t>((latency_cycles + m - 1) / m);
    read_hit_latency_.add(core_cycles);
    ++dl1_read_hits_;
    v.mem_ready_cycle =
        serviced.issued_at + static_cast<std::int64_t>(core_cycles) * m;
  } else {
    ++dl1_read_misses_;
    const mem::FillResult fill = backside_.fill(pending.addr);
    std::int64_t fill_latency = fill.latency_cycles;
    std::uint32_t retries = 0;
    bool exhausted = false;
    if (stt_write_faults_) {
      // The fill's write retries are drawn here (a deterministic event
      // point) and their latency folds into the response cycle.
      retries = injector_->draw_write_retries(&exhausted);
      fill_latency += static_cast<std::int64_t>(retries) *
                      params_.faults.stt.retry_cycles;
    }
    const std::int64_t response = serviced.serviced_at + fill_latency;
    fill_events_.push(FillEvent{response, pending.addr, /*instruction=*/false,
                                retries, /*drop=*/exhausted,
                                /*store=*/false});
    const std::int64_t latency = response + 1 - serviced.issued_at;
    v.mem_ready_cycle = serviced.issued_at + ((latency + m - 1) / m) * m;
  }
  pending.valid = false;
}

void ClusterSim::apply_fill(const FillEvent& event) {
  // The fill occupies the write port and writes the data array.
  dl1_ctrl_->submit_fill(event.cycle);
  mem::CacheArray& array = event.instruction ? *l1i_ : *l1d_;
  const mem::LineAddr line = mem::line_of(event.addr, cfg_.l1_line_bytes);
  if (!array.can_insert(line)) {
    // Every way of the target set is disabled: the line bypasses the
    // cache. A store-allocate fill carries store data, which writes
    // through instead.
    if (event.store) backside_.writeback(event.addr);
    return;
  }
  ++counts_.l1_writes;
  counts_.l1_writes += event.retries;  // Each retry pulses the array again.
  if (event.drop) {
    // Write retries exhausted at draw time: the fill is dropped. A clean
    // copy still lives below; store data writes through.
    if (event.store) backside_.writeback(event.addr);
    return;
  }
  if (array.probe(line).has_value()) return;  // Raced with another fill.
  // On a hybrid L1D, steer store-allocate fills (write-biased lines) into
  // the SRAM way class; pure arrays and the L1I ignore the hint.
  const mem::WayClassHint hint = event.store ? mem::WayClassHint::kPreferSram
                                             : mem::WayClassHint::kAny;
  bool placed_sram = false;
  if (auto evicted = array.insert(line, mem::Mesi::kExclusive, hint,
                                  &placed_sram)) {
    if (evicted->dirty) {
      backside_.writeback(evicted->line * cfg_.l1_line_bytes);
    }
  }
  if (placed_sram) counts_.l1_sram_writes += 1 + event.retries;
}

void ClusterSim::set_active_cores(std::uint32_t count) {
  RESPIN_REQUIRE(count >= 1 && count <= cfg_.cluster_cores,
                 "active core count out of range");
  if (count != active_count_) apply_active_count(count);
}

void ClusterSim::migrate_vcore(std::uint32_t vid, std::uint32_t to) {
  const std::uint32_t from = host_of_[vid];
  if (from == to) return;
  auto& src = cores_[from].vcores;
  const auto it = std::find(src.begin(), src.end(), vid);
  RESPIN_REQUIRE(it != src.end(), "vcore not on its recorded host");
  const auto idx = static_cast<std::size_t>(it - src.begin());
  src.erase(it);
  if (cores_[from].run_index > idx) --cores_[from].run_index;
  if (cores_[from].run_index >= src.size()) cores_[from].run_index = 0;
  cores_[to].vcores.push_back(vid);
  host_of_[vid] = to;

  // Migration cost: drain, PC + register-file transfer, warm-up on the
  // target (paper SIII.D). Charged to the moved thread.
  cpu::VirtualCore& v = vcores_[vid];
  const std::int64_t penalty =
      static_cast<std::int64_t>(cfg_.core_timing.migration_cycles) *
      cores_[to].multiplier;
  if (v.state == cpu::WaitState::kRunnable ||
      v.state == cpu::WaitState::kStoreBuffer) {
    v.state = cpu::WaitState::kMemory;
    v.mem_commit_pending = false;
    v.mem_ready_cycle = now_ + penalty;
  } else if (v.state == cpu::WaitState::kMemory &&
             v.mem_ready_cycle != kNever) {
    v.mem_ready_cycle = std::max(v.mem_ready_cycle, now_) + penalty;
  }
  // Barrier-blocked and finished vcores migrate for free: their context is
  // transferred while they wait.
}

void ClusterSim::power_down_one() {
  // Least efficient active core (paper SIII.C: slowest first).
  std::uint32_t victim = cfg_.cluster_cores;
  for (auto it = efficiency_order_.rbegin(); it != efficiency_order_.rend();
       ++it) {
    if (cores_[*it].powered_on) {
      victim = *it;
      break;
    }
  }
  RESPIN_REQUIRE(victim < cfg_.cluster_cores, "no active core to gate");

  // Reassign its virtual cores round-robin across the remaining active
  // cores, starting from the most efficient.
  std::vector<std::uint32_t> remaining;
  for (std::uint32_t pid : efficiency_order_) {
    if (pid != victim && cores_[pid].powered_on) remaining.push_back(pid);
  }
  RESPIN_REQUIRE(!remaining.empty(), "cannot gate the last core");
  const std::vector<std::uint32_t> orphans = cores_[victim].vcores;
  std::size_t cursor = 0;
  for (std::uint32_t vid : orphans) {
    migrate_vcore(vid, remaining[cursor % remaining.size()]);
    ++cursor;
  }

  cpu::PhysicalCore& p = cores_[victim];
  p.powered_on = false;
  p.run_index = 0;
  if (private_l1_) private_l1_->flush_core(victim, backside_);
  --powered_cores_;
  --active_count_;
}

void ClusterSim::power_up_one() {
  // Most efficient inactive core.
  std::uint32_t target = cfg_.cluster_cores;
  for (std::uint32_t pid : efficiency_order_) {
    if (!cores_[pid].powered_on) {
      target = pid;
      break;
    }
  }
  RESPIN_REQUIRE(target < cfg_.cluster_cores, "no gated core to wake");

  cpu::PhysicalCore& p = cores_[target];
  p.powered_on = true;
  p.run_index = 0;
  p.quantum_remaining = cfg_.core_timing.hw_quantum_instructions;
  p.os_next_switch = now_ + cfg_.os_quantum_cycles;
  p.stalled_until =
      now_ + cfg_.core_timing.power_on_stall_cycles * p.multiplier;
  core_next_tick_[target] = next_boundary_after(target, now_ + 1);
  next_core_tick_ = std::min(next_core_tick_, core_next_tick_[target]);
  ++powered_cores_;
  ++active_count_;

  // Rebalance: shift load from the fullest cores onto the fresh one.
  const std::size_t fair =
      (vcores_.size() + active_count_ - 1) / active_count_;
  while (p.vcores.size() < fair) {
    std::uint32_t donor = cfg_.cluster_cores;
    std::size_t most = p.vcores.size() + 1;
    for (std::uint32_t pid = 0; pid < cores_.size(); ++pid) {
      if (pid == target || !cores_[pid].powered_on) continue;
      if (cores_[pid].vcores.size() > most) {
        most = cores_[pid].vcores.size();
        donor = pid;
      }
    }
    if (donor == cfg_.cluster_cores) break;
    migrate_vcore(cores_[donor].vcores.back(), target);
  }
}

void ClusterSim::apply_active_count(std::uint32_t target) {
  sync_power_integral();
  const std::uint32_t from = active_count_;
  while (active_count_ > target) power_down_one();
  while (active_count_ < target) power_up_one();
  if (params_.trace != nullptr && target != from) {
    obs::Event event("consolidate");
    event.str("config", cfg_.name)
        .str("benchmark", benchmark_name_)
        .i64("cycle", now_)
        .i64("from_cores", from)
        .i64("to_cores", target);
    params_.trace->record(event);
  }
}

void ClusterSim::emit_epoch_event() {
  if (params_.trace == nullptr) return;
  obs::Event event("epoch");
  event.str("config", cfg_.name)
      .str("benchmark", benchmark_name_)
      .i64("cycle", now_)
      .i64("active_cores", active_count_)
      .i64("instructions", static_cast<std::int64_t>(counts_.instructions))
      .f64("epi_pj", last_epoch_epi_);
  params_.trace->record(event);
}

void ClusterSim::collect_counters(obs::CounterSet& set) const {
  for (std::uint32_t pid = 0; pid < cores_.size(); ++pid) {
    const cpu::PhysicalCore& p = cores_[pid];
    const std::string prefix = "core" + std::to_string(pid);
    set.add(prefix + ".multiplier", static_cast<std::int64_t>(p.multiplier));
    set.add(prefix + ".powered_on", p.powered_on ? 1.0 : 0.0);
    set.add(prefix + ".busy_cycles", p.busy_cycles);
    set.add(prefix + ".idle_cycles", p.idle_cycles);
    set.add(prefix + ".resident_vcores",
            static_cast<std::uint64_t>(p.vcores.size()));
  }
  for (std::uint32_t vid = 0; vid < vcores_.size(); ++vid) {
    set.add("vcore" + std::to_string(vid) + ".instructions",
            vcores_[vid].instructions);
  }
  if (dl1_ctrl_) dl1_ctrl_->collect_counters(set, "dl1");
  if (private_l1_) private_l1_->collect_counters(set, "pl1");
  if (cfg_.hybrid_sram_ways > 0) {
    set.add("tech.l1_sram_ways",
            static_cast<std::uint64_t>(cfg_.hybrid_sram_ways));
    set.add("tech.l1_nvm_ways",
            static_cast<std::uint64_t>(cfg_.hybrid_nvm_ways));
    set.add("tech.l1_sram_reads", counts_.l1_sram_reads);
    set.add("tech.l1_sram_writes", counts_.l1_sram_writes);
  }
  if (injector_) {
    const fault::FaultStats& f = injector_->stats();
    set.add("fault.sram_lines_mapped", f.sram_lines_mapped);
    set.add("fault.sram_lines_correctable", f.sram_lines_correctable);
    set.add("fault.sram_lines_disabled", f.sram_lines_disabled);
    set.add("fault.ecc_corrections", f.ecc_corrections);
    set.add("fault.stt_write_faults", f.stt_write_faults);
    set.add("fault.stt_write_retries", f.stt_write_retries);
    set.add("fault.stt_lines_disabled", f.stt_lines_disabled);
    std::uint64_t disabled = 0, correctable = 0, usable = 0, total = 0;
    fault_capacity(&disabled, &correctable, &usable, &total);
    set.add("fault.l1_disabled_ways", disabled);
    set.add("fault.l1_correctable_ways", correctable);
    set.add("fault.l1_usable_bytes", usable);
    set.add("fault.l1_total_bytes", total);
  }
  const mem::BacksideStats& b = backside_.stats();
  set.add("backside.l2_reads", b.l2_reads);
  set.add("backside.l2_writes", b.l2_writes);
  set.add("backside.l3_reads", b.l3_reads);
  set.add("backside.l3_writes", b.l3_writes);
  set.add("backside.memory_reads", b.memory_reads);
  set.add("backside.memory_writes", b.memory_writes);
}

void ClusterSim::fault_capacity(std::uint64_t* disabled,
                                std::uint64_t* correctable,
                                std::uint64_t* usable,
                                std::uint64_t* total) const {
  *disabled = *correctable = *usable = *total = 0;
  const auto account = [&](const mem::CacheArray& array) {
    *disabled += array.disabled_ways();
    *correctable += array.correctable_ways();
    *usable += array.usable_capacity_bytes();
    *total += array.capacity_bytes();
  };
  if (l1i_) account(*l1i_);
  if (l1d_) account(*l1d_);
  if (private_l1_) {
    for (std::uint32_t c = 0; c < cfg_.cluster_cores; ++c) {
      account(private_l1_->l1i(c));
      account(private_l1_->l1d(c));
    }
  }
}

void ClusterSim::sync_power_integral() {
  const double period = static_cast<double>(cfg_.clocking.cache_period);
  counts_.core_on_ps += static_cast<double>(powered_cores_) *
                        static_cast<double>(now_ - power_integral_mark_) *
                        period;
  power_integral_mark_ = now_;
}

power::ActivityCounts ClusterSim::current_counts() {
  sync_power_integral();
  power::ActivityCounts c = counts_;
  for (const auto& core : cores_) {
    c.core_busy_cycles += core.busy_cycles;
    c.core_idle_cycles += core.idle_cycles;
  }
  const mem::BacksideStats& b = backside_.stats();
  c.l2_reads += b.l2_reads;
  c.l2_writes += b.l2_writes;
  c.l3_reads += b.l3_reads;
  c.l3_writes += b.l3_writes;
  c.dram_accesses += b.memory_reads + b.memory_writes;
  if (private_l1_) {
    c.l1_reads += private_l1_->l1_reads();
    c.l1_writes += private_l1_->l1_writes();
    const mem::CoherenceStats& coh = private_l1_->coherence_stats();
    c.coherence_messages += coh.upgrades * 2 + coh.invalidations_sent +
                            coh.interventions * 3 + coh.writebacks +
                            coh.directory_lookups;
  }
  return c;
}

SimResult ClusterSim::result() {
  SimResult r;
  r.config_name = cfg_.name;
  r.benchmark = benchmark_name_;
  r.cycles = now_;
  r.seconds =
      util::to_seconds(now_ * cfg_.clocking.cache_period);
  r.hit_cycle_limit = !done() && now_ >= params_.max_cycles;

  r.counts = current_counts();
  r.instructions = r.counts.instructions;
  r.energy = power::compute_energy(cfg_.power, r.counts,
                                   now_ * cfg_.clocking.cache_period);

  r.read_hit_latency = read_hit_latency_;
  r.dl1_read_hits = dl1_read_hits_;
  r.dl1_read_misses = dl1_read_misses_;
  if (dl1_ctrl_) {
    r.dl1_half_misses = dl1_ctrl_->stats().half_misses;
    r.dl1_store_rejections = dl1_ctrl_->stats().store_queue_rejections;
    r.dl1_arrivals = dl1_ctrl_->stats().arrivals_per_cycle;
    r.dl1_cycles = dl1_ctrl_->stats().total_cycles;
  }

  r.hybrid_sram_ways = cfg_.hybrid_sram_ways;
  r.hybrid_nvm_ways = cfg_.hybrid_nvm_ways;

  if (injector_) {
    r.faults_enabled = true;
    r.faults = injector_->stats();
    fault_capacity(&r.fault_l1_disabled_ways, &r.fault_l1_correctable_ways,
                   &r.fault_l1_usable_bytes, &r.fault_l1_total_bytes);
  }

  r.trace = trace_;
  if (active_stat_.count() > 0) {
    r.avg_active_cores = active_stat_.mean();
    r.min_active_cores = static_cast<std::uint32_t>(active_stat_.min());
    r.max_active_cores = static_cast<std::uint32_t>(active_stat_.max());
  } else {
    r.avg_active_cores = active_count_;
    r.min_active_cores = active_count_;
    r.max_active_cores = active_count_;
  }
  return r;
}

std::string ClusterSim::describe_state() const {
  std::ostringstream os;
  os << "t=" << now_ << " active=" << active_count_ << " finished="
     << finished_vcores_ << "/" << vcores_.size() << "\n";
  os << "barrier: completed=" << barrier_.completed << " arrived="
     << barrier_.arrived << " release=" << barrier_.last_release << "\n";
  for (std::uint32_t vid = 0; vid < vcores_.size(); ++vid) {
    const cpu::VirtualCore& v = vcores_[vid];
    const char* state = "?";
    switch (v.state) {
      case cpu::WaitState::kRunnable: state = "runnable"; break;
      case cpu::WaitState::kMemory: state = "memory"; break;
      case cpu::WaitState::kBarrier: state = "barrier"; break;
      case cpu::WaitState::kStoreBuffer: state = "store"; break;
      case cpu::WaitState::kFinished: state = "finished"; break;
    }
    os << "  v" << vid << " on p" << host_of_[vid] << " " << state
       << " mem_ready=" << v.mem_ready_cycle << " barrier_id="
       << v.barrier_id << " instr=" << v.instructions << "\n";
  }
  for (std::uint32_t pid = 0; pid < cores_.size(); ++pid) {
    const cpu::PhysicalCore& p = cores_[pid];
    os << "  p" << pid << (p.powered_on ? " on" : " OFF") << " next_tick="
       << core_next_tick_[pid] << " stalled_until=" << p.stalled_until
       << " vcores=" << p.vcores.size() << " run_index=" << p.run_index
       << (pending_reads_.empty() || !pending_reads_[pid].valid
               ? ""
               : " PENDING-READ")
       << "\n";
  }
  return os.str();
}

ClusterSim make_sim(const ClusterConfig& config, const std::string& benchmark,
                    const SimParams& params) {
  ClusterSim sim(config, workload::benchmark(benchmark), params);
  return sim;
}

}  // namespace respin::core
