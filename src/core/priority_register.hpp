// Priority shift registers for the shared cache controller (paper Fig. 3).
//
// Each in-flight request carries a shift register preloaded with one '1'
// bit per shared-cache cycle remaining before the issuing core's cycle
// boundary. Every cache cycle the register shifts right; a request whose
// register holds fewer '1's expires sooner and wins arbitration. A
// register reaching zero unserviced means the request missed its window —
// the "half-miss" of paper §II.A — and is re-armed with a single '1' so it
// wins the following cycle.
#pragma once

#include <bit>
#include <cstdint>

#include "util/require.hpp"

namespace respin::core {

class PriorityRegister {
 public:
  /// Maximum slack the register can encode (bits).
  static constexpr std::uint32_t kWidth = 31;

  PriorityRegister() = default;

  /// Preloads with `slack` ones: the request must be serviced within
  /// `slack` cache cycles. slack must be in [1, kWidth].
  void preload(std::uint32_t slack) {
    RESPIN_REQUIRE(slack >= 1 && slack <= kWidth,
                   "priority register slack out of range");
    bits_ = (1u << slack) - 1;
  }

  /// One cache cycle elapses.
  void shift() { bits_ >>= 1; }

  /// Remaining cycles (number of '1' bits).
  std::uint32_t slack() const {
    return static_cast<std::uint32_t>(std::popcount(bits_));
  }

  /// True when the request must be serviced this cycle ("00001").
  bool critical() const { return bits_ == 1; }

  /// True when the window was missed (register fully drained).
  bool expired() const { return bits_ == 0; }

  std::uint32_t raw() const { return bits_; }

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace respin::core
