// Time-multiplexed shared L1 cache controller (paper §II.A).
//
// One controller front-ends a shared L1 array for a cluster of cores whose
// clock periods are integer multiples of the cache period. It maintains a
// request register and a priority shift register per core, services the
// soonest-expiring read each cycle through a single read port, signals
// "half-misses" when a request cannot be serviced within its core cycle,
// and drains stores/line-fills through a single write port with a bounded
// store queue (STT-RAM writes occupy the port for many cycles).
//
// The controller arbitrates only — the owning cluster performs the actual
// tag lookups on serviced requests — so it is reusable for both the L1I
// and L1D and for SRAM or STT-RAM arrays (which differ only in the port
// occupancy parameters).
//
// Per-core request state is laid out struct-of-arrays: a packed bitmask of
// cores with a visible (arbitratable) read, plus parallel arrays for the
// raw priority-register bits, issue cycles and half-miss counts. The
// per-cycle arbitration and aging loops walk only the set bits of the
// mask instead of all core slots, and reads that are submitted but not
// yet visible wait in a FIFO (their visible times are nondecreasing, so
// the front is always the soonest) — making next_activity_cycle() O(1)
// in the core count.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/priority_register.hpp"
#include "obs/counters.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace respin::core {

/// Read-port arbitration policy. The paper's controller services the
/// soonest-expiring request (priority shift registers); round-robin is
/// provided as an ablation baseline.
enum class ArbitrationPolicy : std::uint8_t { kPriority, kRoundRobin };

struct ControllerParams {
  std::uint32_t core_count = 16;
  ArbitrationPolicy arbitration = ArbitrationPolicy::kPriority;
  /// Wire + level-shifter delay from a core to the controller, in cache
  /// cycles (paper: 0.8 ns = 2 cycles, pipelined on the cache side).
  std::uint32_t request_delay_cycles = 2;
  /// Cache cycles the read port is occupied per read (1 for STT-RAM at
  /// 0.4 ns, 2 for a 256KB SRAM at 533.6 ps).
  std::uint32_t read_occupancy = 1;
  /// Cache cycles the write port is occupied per write (13 for STT-RAM's
  /// 5.2 ns write pulse, 2 for SRAM).
  std::uint32_t write_occupancy = 13;
  /// Store queue entries shared by the cluster.
  std::uint32_t store_queue_depth = 16;
};

/// A read serviced by the controller this cycle.
struct ServicedRead {
  std::uint32_t core = 0;
  std::int64_t issued_at = 0;    ///< Cache cycle the core issued it.
  std::int64_t serviced_at = 0;  ///< Cache cycle the port accepted it.
  std::uint32_t half_misses = 0; ///< Windows missed before service.
};

/// Aggregate controller statistics (paper Figs. 10 and 11 derive from
/// these, plus hit/miss information the owner layers on).
struct ControllerStats {
  util::Histogram arrivals_per_cycle{9};  ///< Requests arriving per cycle.
  std::uint64_t reads_serviced = 0;
  std::uint64_t half_misses = 0;
  std::uint64_t stores_accepted = 0;
  std::uint64_t store_queue_rejections = 0;
  std::uint64_t fills = 0;
  std::uint64_t busy_cycles = 0;   ///< Cycles with >=1 pending request.
  std::uint64_t total_cycles = 0;

  ControllerStats() = default;
};

class SharedCacheController {
 public:
  SharedCacheController(const ControllerParams& params,
                        std::uint64_t rng_seed);

  /// Core `core` (period `multiplier` cache cycles) issues a blocking read
  /// at cache-cycle `now` (its cycle boundary). At most one outstanding
  /// read per core is allowed.
  void submit_read(std::uint32_t core, std::uint32_t multiplier,
                   std::int64_t now);

  /// Enqueues a store; returns false when the store queue is full (the
  /// core must stall and retry).
  bool submit_store(std::int64_t now);

  /// Enqueues a line fill (miss return). Fills outrank stores for the
  /// write port.
  void submit_fill(std::int64_t now);

  /// Advances one cache cycle; serviced reads are appended to `out`.
  void step(std::int64_t now, std::vector<ServicedRead>& out);

  /// Earliest cycle strictly after `now` at which step() could do
  /// anything beyond bookkeeping: a request becomes visible, a queued
  /// store/fill can take the write port, or — when a visible read is
  /// already waiting — simply now + 1, because arbitration and priority
  /// aging run every cycle then. Returns INT64_MAX with nothing pending.
  /// The owner's event-driven clock may jump straight to this cycle.
  std::int64_t next_activity_cycle(std::int64_t now) const;

  /// Accounts for `cycles` consecutive skipped cache cycles — the owner's
  /// clock jumped over them because next_activity_cycle() proved inert.
  /// Statistics advance exactly as if step() had been called once per
  /// skipped cycle: the arrival census records zero arrivals (nothing can
  /// become visible inside a skipped window) and busy_cycles counts the
  /// window when work is merely parked in flight.
  void note_skipped_cycles(std::int64_t cycles);

  bool has_pending_work() const;
  std::uint32_t store_queue_size() const {
    return static_cast<std::uint32_t>(store_queue_.size()) + pending_stores_;
  }

  const ControllerParams& params() const { return params_; }
  const ControllerStats& stats() const {
    flush_census();
    return stats_;
  }

  /// Exports the controller statistics (including the arrival histogram
  /// bucket by bucket) into `set` under `prefix` ("<prefix>.half_misses",
  /// ...). Part of the respin::obs counter-registry taxonomy.
  void collect_counters(obs::CounterSet& set,
                        const std::string& prefix) const;

 private:
  static constexpr std::uint32_t kNoCore =
      static_cast<std::uint32_t>(-1);
  /// Matches ControllerStats::arrivals_per_cycle's bucket count.
  static constexpr std::size_t kCensusBuckets = 9;

  /// A read submitted but not yet visible at the controller. Submission
  /// cycles are nondecreasing and the wire delay is a constant, so the
  /// FIFO is sorted by visible_at.
  struct PendingRead {
    std::int64_t visible_at;
    std::uint32_t core;
  };

  ControllerParams params_;
  util::Rng rng_;

  // ---- Per-core read-slot state, struct-of-arrays ----------------------
  // A core is "outstanding" when its bit is set in valid_words_; it is
  // additionally "visible" (participates in arbitration/aging) once its
  // bit is set in visible_words_. visible ⊆ valid always holds.
  std::vector<std::uint64_t> valid_words_;
  std::vector<std::uint64_t> visible_words_;
  std::vector<std::uint32_t> priority_bits_;  ///< Raw shift registers.
  std::vector<std::int64_t> issued_at_;
  std::vector<std::uint32_t> half_misses_;
  /// Submitted reads awaiting visibility, sorted by visible_at.
  std::deque<PendingRead> read_arrivals_;

  std::deque<std::int64_t> pending_store_times_;  ///< In flight to the queue.
  std::deque<std::int64_t> store_queue_;   ///< visible_at per queued store.
  std::uint32_t pending_stores_ = 0;       ///< Submitted, not yet visible.
  std::deque<std::int64_t> fill_queue_;
  std::int64_t read_port_free_at_ = 0;
  std::int64_t write_port_free_at_ = 0;
  std::array<std::uint32_t, 8> arrival_ring_{};  ///< Arrivals per near cycle.
  std::uint32_t outstanding_ = 0;          ///< Items not yet drained.
  std::uint32_t rr_cursor_ = 0;            ///< Round-robin ablation state.
  // The arrival census accumulates in a plain array on the per-cycle path
  // and folds into the histogram only when stats are read (stats() /
  // collect_counters()), hence the mutable pair.
  mutable std::array<std::uint64_t, kCensusBuckets> census_{};
  mutable ControllerStats stats_;

  void note_arrival(std::int64_t visible_at);
  void flush_census() const;
  std::uint32_t arbitrate_priority(std::int64_t now);
  std::uint32_t arbitrate_round_robin();
};

}  // namespace respin::core
