#include "core/chip.hpp"

#include <algorithm>

#include "core/oracle.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"
#include "workload/workload.hpp"

namespace respin::core {

ClusterConfig make_chip_cluster_config(ConfigId id, CacheSize size,
                                       std::uint32_t cluster_cores,
                                       std::uint32_t cluster_index,
                                       std::uint64_t seed,
                                       const TechOverride& tech) {
  return make_cluster_config(id, size, cluster_cores, seed,
                             CoreCalibration{},
                             cluster_index * cluster_cores, tech);
}

ChipResult run_chip(ConfigId id, const std::string& benchmark,
                    const RunOptions& options) {
  const std::uint32_t clusters = 64 / options.cluster_cores;

  // Build every cluster's configuration up front (each carries its own
  // VARIUS die region); the simulation and the tail-leakage accounting
  // below both read from this one set.
  std::vector<ClusterConfig> configs;
  configs.reserve(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    configs.push_back(make_chip_cluster_config(
        id, options.size, options.cluster_cores, c, options.seed,
        options.tech));
  }

  ChipResult chip;
  chip.benchmark = benchmark;
  chip.config_name = configs.front().name;

  // Clusters are architecturally independent (no cross-cluster coherence
  // in any evaluated configuration) and ClusterSim is a value type, so the
  // chip fans out one simulation per cluster. Results come back in cluster
  // order and each simulation is seeded independently, so the outcome is
  // bit-identical to the serial loop.
  chip.clusters = exec::parallel_map_n(clusters, [&](std::size_t c) {
    SimParams params;
    params.workload_scale = options.workload_scale;
    params.cycle_skip = options.cycle_skip;
    params.trace = options.trace;
    // Each cluster runs its own process instance of the benchmark: a
    // distinct workload seed per cluster.
    params.seed = options.seed + 1000ull * c;
    ClusterSim sim(configs[c], workload::benchmark(benchmark), params);
    if (configs[c].governor == GovernorKind::kOracle) {
      return run_with_oracle(sim,
                             OracleParams{.stride = options.oracle_stride});
    }
    sim.run();
    return sim.result();
  });

  // Chip finish time = slowest cluster.
  for (const SimResult& r : chip.clusters) {
    chip.seconds = std::max(chip.seconds, r.seconds);
    chip.instructions += r.instructions;
  }

  // Energy: each cluster's measured energy, plus leakage of the
  // early-finishing clusters' always-on structures (caches/uncore) until
  // the chip finish time. Core leakage after program exit is excluded —
  // idle cores are assumed gated once their threads are done.
  for (std::uint32_t c = 0; c < clusters; ++c) {
    const SimResult& r = chip.clusters[c];
    chip.energy.core_dynamic += r.energy.core_dynamic;
    chip.energy.core_leakage += r.energy.core_leakage;
    chip.energy.cache_dynamic += r.energy.cache_dynamic;
    chip.energy.cache_leakage += r.energy.cache_leakage;
    chip.energy.dram += r.energy.dram;
    chip.energy.network += r.energy.network;

    const double tail_seconds = chip.seconds - r.seconds;
    if (tail_seconds > 0.0) {
      const ClusterConfig& config = configs[c];
      const double cache_leak_w = config.power.l1_leakage_w +
                                  config.power.l2_leakage_w +
                                  config.power.l3_leakage_w;
      chip.energy.cache_leakage += cache_leak_w * tail_seconds * 1e12;
      chip.energy.network += config.power.uncore_w * tail_seconds * 1e12;
    }
  }
  if (options.trace != nullptr) {
    obs::Event event("chip_complete");
    event.str("config", chip.config_name)
        .str("benchmark", chip.benchmark)
        .i64("clusters", static_cast<std::int64_t>(chip.clusters.size()))
        .f64("seconds", chip.seconds)
        .i64("instructions", static_cast<std::int64_t>(chip.instructions))
        .f64("energy_pj", chip.energy.total());
    options.trace->record(event);
  }
  return chip;
}

}  // namespace respin::core
