#include "core/chip.hpp"

#include <algorithm>

#include "core/oracle.hpp"
#include "util/require.hpp"
#include "workload/workload.hpp"

namespace respin::core {

ClusterConfig make_chip_cluster_config(ConfigId id, CacheSize size,
                                       std::uint32_t cluster_cores,
                                       std::uint32_t cluster_index,
                                       std::uint64_t seed) {
  return make_cluster_config(id, size, cluster_cores, seed,
                             CoreCalibration{},
                             cluster_index * cluster_cores);
}

ChipResult run_chip(ConfigId id, const std::string& benchmark,
                    const RunOptions& options) {
  const std::uint32_t clusters = 64 / options.cluster_cores;

  ChipResult chip;
  chip.benchmark = benchmark;
  chip.clusters.reserve(clusters);

  for (std::uint32_t c = 0; c < clusters; ++c) {
    const ClusterConfig config = make_chip_cluster_config(
        id, options.size, options.cluster_cores, c, options.seed);
    chip.config_name = config.name;
    SimParams params;
    params.workload_scale = options.workload_scale;
    // Each cluster runs its own process instance of the benchmark: a
    // distinct workload seed per cluster.
    params.seed = options.seed + 1000ull * c;
    ClusterSim sim(config, workload::benchmark(benchmark), params);
    SimResult result;
    if (config.governor == GovernorKind::kOracle) {
      result = run_with_oracle(
          sim, OracleParams{.stride = options.oracle_stride});
    } else {
      sim.run();
      result = sim.result();
    }
    chip.clusters.push_back(std::move(result));
  }

  // Chip finish time = slowest cluster.
  for (const SimResult& r : chip.clusters) {
    chip.seconds = std::max(chip.seconds, r.seconds);
    chip.instructions += r.instructions;
  }

  // Energy: each cluster's measured energy, plus leakage of the
  // early-finishing clusters' always-on structures (caches/uncore) until
  // the chip finish time. Core leakage after program exit is excluded —
  // idle cores are assumed gated once their threads are done.
  for (std::uint32_t c = 0; c < clusters; ++c) {
    const SimResult& r = chip.clusters[c];
    chip.energy.core_dynamic += r.energy.core_dynamic;
    chip.energy.core_leakage += r.energy.core_leakage;
    chip.energy.cache_dynamic += r.energy.cache_dynamic;
    chip.energy.cache_leakage += r.energy.cache_leakage;
    chip.energy.dram += r.energy.dram;
    chip.energy.network += r.energy.network;

    const double tail_seconds = chip.seconds - r.seconds;
    if (tail_seconds > 0.0) {
      const ClusterConfig config = make_chip_cluster_config(
          id, options.size, options.cluster_cores, c, options.seed);
      const double cache_leak_w = config.power.l1_leakage_w +
                                  config.power.l2_leakage_w +
                                  config.power.l3_leakage_w;
      chip.energy.cache_leakage += cache_leak_w * tail_seconds * 1e12;
      chip.energy.network += config.power.uncore_w * tail_seconds * 1e12;
    }
  }
  return chip;
}

}  // namespace respin::core
