#include "core/consolidation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace respin::core {

GreedyGovernor::GreedyGovernor(const GovernorParams& params,
                               std::uint32_t max_active)
    : params_(params), max_active_(max_active) {
  RESPIN_REQUIRE(max_active >= params.min_active_cores,
                 "max active cores below the governor's minimum");
  RESPIN_REQUIRE(params.epi_threshold >= 0.0, "threshold must be >= 0");
}

std::uint32_t GreedyGovernor::clamp(std::int64_t count) const {
  const auto lo = static_cast<std::int64_t>(params_.min_active_cores);
  const auto hi = static_cast<std::int64_t>(max_active_);
  return static_cast<std::uint32_t>(std::clamp(count, lo, hi));
}

bool GreedyGovernor::detect_oscillation() const {
  // No net progress over the last four decisions (all within one core of
  // each other, with at least one reversal): the search is hovering around
  // a point and each probe costs real straggle time.
  if (history_.size() < 4) return false;
  const std::size_t n = history_.size();
  std::uint32_t lo = history_[n - 4];
  std::uint32_t hi = lo;
  bool reversal = false;
  for (std::size_t i = n - 4; i < n; ++i) {
    lo = std::min(lo, history_[i]);
    hi = std::max(hi, history_[i]);
    if (i + 2 <= n - 1) {
      const auto a = history_[i];
      const auto b = history_[i + 1];
      const auto c = history_[i + 2];
      if ((b > a && c < b) || (b < a && c > b)) reversal = true;
    }
  }
  return hi - lo <= 1 && reversal;
}

std::uint32_t GreedyGovernor::decide(double epi, std::uint32_t current_active) {
  RESPIN_REQUIRE(current_active >= params_.min_active_cores &&
                     current_active <= max_active_,
                 "current active count out of range");

  if (hold_remaining_ > 0) {
    // A drastic EPI swing means the program changed phase: abandon the
    // hold so the search can chase the new operating point.
    const bool comparable = has_previous_ && !std::isinf(epi) &&
                            !std::isinf(previous_epi_) && previous_epi_ > 0.0;
    const double swing =
        comparable ? std::abs(epi - previous_epi_) / previous_epi_ : 0.0;
    if (swing <= params_.phase_change_threshold) {
      --hold_remaining_;
      previous_epi_ = epi;
      return current_active;
    }
    hold_remaining_ = 0;
    backoff_epochs_ = 0;
    history_.clear();
  }

  std::uint32_t next = current_active;
  if (!has_previous_) {
    // Fig. 5: the search starts by shutting one core down after the first
    // full-width epoch.
    has_previous_ = true;
    direction_ = -1;
    next = clamp(static_cast<std::int64_t>(current_active) - 1);
  } else if (std::isinf(epi) || std::isinf(previous_epi_)) {
    // An epoch with no committed instructions (all threads blocked) gives
    // no signal; hold.
    next = current_active;
  } else {
    const double relative_change =
        std::abs(epi - previous_epi_) / std::max(previous_epi_, 1e-300);
    if (relative_change < params_.epi_threshold) {
      next = current_active;  // Not worth a state change.
    } else if (relative_change > params_.phase_change_threshold) {
      // A swing this large is the program changing phase, not the effect
      // of our last +-1 step; attributing it to the step would walk the
      // search in a random direction. Restart the search instead,
      // performance-conservatively: probe toward more cores first (if the
      // new phase cannot use them, the next comparison walks back down).
      direction_ = current_active < max_active_ ? +1 : -1;
      next = clamp(static_cast<std::int64_t>(current_active) + direction_);
      history_.clear();
      backoff_epochs_ = 0;
    } else if (epi < previous_epi_) {
      next = clamp(static_cast<std::int64_t>(current_active) + direction_);
    } else {
      direction_ = -direction_;
      next = clamp(static_cast<std::int64_t>(current_active) + direction_);
    }
  }
  previous_epi_ = epi;

  history_.push_back(next);
  if (history_.size() > 8) history_.pop_front();

  if (detect_oscillation()) {
    backoff_epochs_ = backoff_epochs_ == 0
                          ? params_.backoff_initial
                          : std::min(backoff_epochs_ * 2, params_.backoff_max);
    hold_remaining_ = backoff_epochs_;
    // Hold the *current* state rather than completing the oscillation.
    next = current_active;
  } else if (backoff_epochs_ != 0 && history_.size() >= 2 &&
             history_[history_.size() - 1] == history_[history_.size() - 2]) {
    // Stability resets the back-off schedule.
    backoff_epochs_ = 0;
  }
  return next;
}

std::vector<std::uint32_t> efficiency_ranking(
    const std::vector<int>& multipliers) {
  std::vector<std::uint32_t> order(multipliers.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return multipliers[a] < multipliers[b];
                   });
  return order;
}

std::vector<std::uint32_t> round_robin_assignment(
    const std::vector<std::uint32_t>& active, std::uint32_t vcore_count) {
  RESPIN_REQUIRE(!active.empty(), "need at least one active core");
  std::vector<std::uint32_t> assignment(vcore_count);
  for (std::uint32_t v = 0; v < vcore_count; ++v) {
    assignment[v] = active[v % active.size()];
  }
  return assignment;
}

}  // namespace respin::core
