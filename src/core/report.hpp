// Result serialization: CSV export of simulation results and
// consolidation traces for downstream analysis (spreadsheets, gnuplot,
// pandas), plus a compact one-line summary formatter.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/chip.hpp"
#include "core/cluster_sim.hpp"

namespace respin::core {

/// Header row matching result_csv_row().
std::string result_csv_header();

/// One CSV row for a finished run: config, benchmark, timing, energy
/// components, cache behaviour and consolidation summary.
std::string result_csv_row(const SimResult& result);

/// Writes a whole result set as CSV (header + one row per result).
void write_results_csv(std::ostream& os, const std::vector<SimResult>& results);

/// Writes a consolidation trace as CSV: time_us, active_cores, epi_nj.
void write_trace_csv(std::ostream& os, const SimResult& result);

/// Compact human-readable one-liner, e.g.
/// "SH-STT/ocean: 1.70 ms, 164.2 W, 279.3 mJ, EPI 73.4 nJ".
std::string summarize(const SimResult& result);

/// Chip-level CSV row (aggregate over clusters).
std::string chip_csv_row(const ChipResult& result);
std::string chip_csv_header();

}  // namespace respin::core
