#include "core/shared_cache_controller.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/require.hpp"

namespace respin::core {

namespace {
constexpr std::uint64_t bit_of(std::uint32_t core) {
  return std::uint64_t{1} << (core & 63u);
}
}  // namespace

SharedCacheController::SharedCacheController(const ControllerParams& params,
                                             std::uint64_t rng_seed)
    : params_(params),
      rng_("controller", rng_seed),
      valid_words_((params.core_count + 63) / 64, 0),
      visible_words_((params.core_count + 63) / 64, 0),
      priority_bits_(params.core_count, 0),
      issued_at_(params.core_count, 0),
      half_misses_(params.core_count, 0) {
  RESPIN_REQUIRE(params.core_count >= 1, "controller needs cores");
  RESPIN_REQUIRE(params.request_delay_cycles + 2 < arrival_ring_.size(),
                 "request delay exceeds arrival ring window");
  RESPIN_REQUIRE(params.read_occupancy >= 1 && params.write_occupancy >= 1,
                 "port occupancies must be at least one cycle");
  arrival_ring_.fill(0);
}

void SharedCacheController::note_arrival(std::int64_t visible_at) {
  ++arrival_ring_[static_cast<std::size_t>(visible_at) % arrival_ring_.size()];
}

void SharedCacheController::flush_census() const {
  for (std::size_t i = 0; i < census_.size(); ++i) {
    if (census_[i] != 0) {
      stats_.arrivals_per_cycle.add(i, census_[i]);
      census_[i] = 0;
    }
  }
}

void SharedCacheController::submit_read(std::uint32_t core,
                                        std::uint32_t multiplier,
                                        std::int64_t now) {
  RESPIN_REQUIRE(core < params_.core_count, "core id out of range");
  RESPIN_REQUIRE((valid_words_[core >> 6] & bit_of(core)) == 0,
                 "core already has an outstanding read");
  RESPIN_REQUIRE(multiplier > params_.request_delay_cycles,
                 "core period must exceed the request wire delay");
  const std::uint32_t slack = multiplier - params_.request_delay_cycles;
  RESPIN_REQUIRE(slack >= 1 && slack <= PriorityRegister::kWidth,
                 "priority register slack out of range");
  valid_words_[core >> 6] |= bit_of(core);
  issued_at_[core] = now;
  half_misses_[core] = 0;
  priority_bits_[core] = (1u << slack) - 1;
  const std::int64_t visible = now + params_.request_delay_cycles;
  read_arrivals_.push_back(PendingRead{visible, core});
  note_arrival(visible);
  ++outstanding_;
}

bool SharedCacheController::submit_store(std::int64_t now) {
  if (store_queue_size() >= params_.store_queue_depth) {
    ++stats_.store_queue_rejections;
    return false;
  }
  const std::int64_t visible = now + params_.request_delay_cycles;
  pending_store_times_.push_back(visible);
  ++pending_stores_;
  note_arrival(visible);
  ++stats_.stores_accepted;
  ++outstanding_;
  return true;
}

void SharedCacheController::submit_fill(std::int64_t now) {
  // Fills come from the backside (already inside the high-voltage domain);
  // they become eligible next cycle.
  const std::int64_t visible = now + 1;
  fill_queue_.push_back(visible);
  note_arrival(visible);
  ++stats_.fills;
  ++outstanding_;
}

bool SharedCacheController::has_pending_work() const {
  return outstanding_ > 0 || !store_queue_.empty() || !fill_queue_.empty();
}

std::int64_t SharedCacheController::next_activity_cycle(
    std::int64_t now) const {
  // A visible read is arbitrated (and its priority register aged) every
  // single cycle — no skipping while one waits.
  for (const std::uint64_t word : visible_words_) {
    if (word != 0) return now + 1;
  }
  std::int64_t next = std::numeric_limits<std::int64_t>::max();
  // Reads still in flight arrive in nondecreasing visible order, so the
  // FIFO front is the soonest (it may be <= now if step() has not yet run
  // at this cycle; the clamp below turns that into now + 1).
  if (!read_arrivals_.empty()) {
    next = std::min(next, read_arrivals_.front().visible_at);
  }
  // Pipelined stores all have future visible times (matured ones already
  // moved to the drain queue); the front is the soonest.
  if (!pending_store_times_.empty()) {
    next = std::min(next, pending_store_times_.front());
  }
  // A fill's visible cycle consumes an arrival-census slot even if the
  // write port delays its drain. The queue is sorted by visible time, so
  // matured fills (visible <= now, waiting on the port) sit at the front
  // and the first future one bounds the rest.
  for (const std::int64_t visible : fill_queue_) {
    if (visible > now) {
      next = std::min(next, visible);
      break;
    }
    next = std::min(next, std::max(write_port_free_at_, now + 1));
  }
  // Queued stores are already visible; they drain when the port frees.
  if (!store_queue_.empty()) {
    next = std::min(next, std::max(write_port_free_at_, now + 1));
  }
  return std::max(next, now + 1);
}

void SharedCacheController::collect_counters(obs::CounterSet& set,
                                             const std::string& prefix) const {
  flush_census();
  set.add(prefix + ".reads_serviced", stats_.reads_serviced);
  set.add(prefix + ".half_misses", stats_.half_misses);
  set.add(prefix + ".stores_accepted", stats_.stores_accepted);
  set.add(prefix + ".store_queue_rejections", stats_.store_queue_rejections);
  set.add(prefix + ".fills", stats_.fills);
  set.add(prefix + ".busy_cycles", stats_.busy_cycles);
  set.add(prefix + ".total_cycles", stats_.total_cycles);
  for (std::size_t i = 0; i < stats_.arrivals_per_cycle.bucket_count(); ++i) {
    set.add(prefix + ".arrivals.bucket" + std::to_string(i),
            stats_.arrivals_per_cycle.bucket(i));
  }
}

void SharedCacheController::note_skipped_cycles(std::int64_t cycles) {
  if (cycles <= 0) return;
  // Inside a skipped window the arrival ring is all zeros (every pending
  // visible time is at or beyond the window's end), so each skipped
  // step() would have recorded a zero-arrival census; it counts as busy
  // exactly when something is still in flight.
  stats_.total_cycles += static_cast<std::uint64_t>(cycles);
  census_[0] += static_cast<std::uint64_t>(cycles);
  if (has_pending_work()) {
    stats_.busy_cycles += static_cast<std::uint64_t>(cycles);
  }
}

std::uint32_t SharedCacheController::arbitrate_priority(std::int64_t now) {
  // Masked min-scan over the visible set: ascending core order with
  // reservoir-sampled tie-breaks, exactly as the reference slot walk (the
  // rng draw sequence is part of the determinism contract).
  (void)now;
  std::uint32_t winner = kNoCore;
  std::uint32_t winner_slack = 0;
  std::uint32_t tie_count = 0;
  for (std::size_t w = 0; w < visible_words_.size(); ++w) {
    std::uint64_t bits = visible_words_[w];
    while (bits != 0) {
      const auto c = static_cast<std::uint32_t>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      const auto slack =
          static_cast<std::uint32_t>(std::popcount(priority_bits_[c]));
      if (winner == kNoCore || slack < winner_slack) {
        winner = c;
        winner_slack = slack;
        tie_count = 1;
      } else if (slack == winner_slack) {
        // Reservoir-sample among ties: the paper breaks ties randomly.
        ++tie_count;
        if (rng_.uniform_u64(tie_count) == 0) winner = c;
      }
    }
  }
  return winner;
}

std::uint32_t SharedCacheController::arbitrate_round_robin() {
  const auto n = params_.core_count;
  for (std::uint32_t offset = 0; offset < n; ++offset) {
    const std::uint32_t c = (rr_cursor_ + offset) % n;
    if ((visible_words_[c >> 6] & bit_of(c)) != 0) {
      rr_cursor_ = (c + 1) % n;
      return c;
    }
  }
  return kNoCore;
}

void SharedCacheController::step(std::int64_t now,
                                 std::vector<ServicedRead>& out) {
  ++stats_.total_cycles;

  // Arrival census for this cycle (paper Fig. 10).
  auto& ring_slot =
      arrival_ring_[static_cast<std::size_t>(now) % arrival_ring_.size()];
  ++census_[ring_slot < kCensusBuckets ? ring_slot : kCensusBuckets - 1];
  ring_slot = 0;

  if (outstanding_ == 0) return;
  ++stats_.busy_cycles;

  // Mature pipelined stores into the drain queue.
  while (!pending_store_times_.empty() && pending_store_times_.front() <= now) {
    store_queue_.push_back(pending_store_times_.front());
    pending_store_times_.pop_front();
    --pending_stores_;
  }

  // Mature in-flight reads into the visible (arbitratable) set.
  while (!read_arrivals_.empty() && read_arrivals_.front().visible_at <= now) {
    const std::uint32_t c = read_arrivals_.front().core;
    visible_words_[c >> 6] |= bit_of(c);
    read_arrivals_.pop_front();
  }

  // Read arbitration: soonest-expiring visible request wins the read port
  // (or plain round-robin when configured as the ablation baseline).
  if (read_port_free_at_ <= now) {
    const std::uint32_t winner =
        params_.arbitration == ArbitrationPolicy::kRoundRobin
            ? arbitrate_round_robin()
            : arbitrate_priority(now);
    if (winner != kNoCore) {
      out.push_back(ServicedRead{.core = winner,
                                 .issued_at = issued_at_[winner],
                                 .serviced_at = now,
                                 .half_misses = half_misses_[winner]});
      valid_words_[winner >> 6] &= ~bit_of(winner);
      visible_words_[winner >> 6] &= ~bit_of(winner);
      --outstanding_;
      ++stats_.reads_serviced;
      read_port_free_at_ = now + params_.read_occupancy;
    }
  }

  // Write port: fills outrank stores.
  if (write_port_free_at_ <= now) {
    if (!fill_queue_.empty() && fill_queue_.front() <= now) {
      fill_queue_.pop_front();
      --outstanding_;
      write_port_free_at_ = now + params_.write_occupancy;
    } else if (!store_queue_.empty() && store_queue_.front() <= now) {
      store_queue_.pop_front();
      --outstanding_;
      write_port_free_at_ = now + params_.write_occupancy;
    }
  }

  // Age the survivors: branch-light sweep over the visible set. A drained
  // register is a half-miss; it re-arms critical (slack 1) so the request
  // wins the following cycle.
  for (std::size_t w = 0; w < visible_words_.size(); ++w) {
    std::uint64_t bits = visible_words_[w];
    while (bits != 0) {
      const auto c = static_cast<std::uint32_t>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      priority_bits_[c] >>= 1;
      if (priority_bits_[c] == 0) {
        if (half_misses_[c] == 0) ++stats_.half_misses;
        ++half_misses_[c];
        priority_bits_[c] = 1u;
      }
    }
  }
}

}  // namespace respin::core
