#include "core/shared_cache_controller.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace respin::core {

SharedCacheController::SharedCacheController(const ControllerParams& params,
                                             std::uint64_t rng_seed)
    : params_(params),
      rng_("controller", rng_seed),
      slots_(params.core_count) {
  RESPIN_REQUIRE(params.core_count >= 1, "controller needs cores");
  RESPIN_REQUIRE(params.request_delay_cycles + 2 < arrival_ring_.size(),
                 "request delay exceeds arrival ring window");
  RESPIN_REQUIRE(params.read_occupancy >= 1 && params.write_occupancy >= 1,
                 "port occupancies must be at least one cycle");
  arrival_ring_.fill(0);
}

void SharedCacheController::note_arrival(std::int64_t visible_at) {
  ++arrival_ring_[static_cast<std::size_t>(visible_at) % arrival_ring_.size()];
}

void SharedCacheController::submit_read(std::uint32_t core,
                                        std::uint32_t multiplier,
                                        std::int64_t now) {
  RESPIN_REQUIRE(core < slots_.size(), "core id out of range");
  ReadSlot& slot = slots_[core];
  RESPIN_REQUIRE(!slot.valid, "core already has an outstanding read");
  RESPIN_REQUIRE(multiplier > params_.request_delay_cycles,
                 "core period must exceed the request wire delay");
  slot.valid = true;
  slot.issued_at = now;
  slot.visible_at = now + params_.request_delay_cycles;
  slot.multiplier = multiplier;
  slot.half_misses = 0;
  slot.priority.preload(multiplier - params_.request_delay_cycles);
  note_arrival(slot.visible_at);
  ++outstanding_;
}

bool SharedCacheController::submit_store(std::int64_t now) {
  if (store_queue_size() >= params_.store_queue_depth) {
    ++stats_.store_queue_rejections;
    return false;
  }
  const std::int64_t visible = now + params_.request_delay_cycles;
  pending_store_times_.push_back(visible);
  ++pending_stores_;
  note_arrival(visible);
  ++stats_.stores_accepted;
  ++outstanding_;
  return true;
}

void SharedCacheController::submit_fill(std::int64_t now) {
  // Fills come from the backside (already inside the high-voltage domain);
  // they become eligible next cycle.
  const std::int64_t visible = now + 1;
  fill_queue_.push_back(visible);
  note_arrival(visible);
  ++stats_.fills;
  ++outstanding_;
}

bool SharedCacheController::has_pending_work() const {
  return outstanding_ > 0 || !store_queue_.empty() || !fill_queue_.empty();
}

std::int64_t SharedCacheController::next_activity_cycle(
    std::int64_t now) const {
  std::int64_t next = std::numeric_limits<std::int64_t>::max();
  for (const ReadSlot& slot : slots_) {
    if (!slot.valid) continue;
    // A visible read is arbitrated (and its priority register aged) every
    // single cycle — no skipping while one waits.
    if (slot.visible_at <= now) return now + 1;
    next = std::min(next, slot.visible_at);
  }
  // Pipelined stores all have future visible times (matured ones already
  // moved to the drain queue); the front is the soonest.
  if (!pending_store_times_.empty()) {
    next = std::min(next, pending_store_times_.front());
  }
  // A fill's visible cycle consumes an arrival-census slot even if the
  // write port delays its drain, so stop at whichever comes first.
  for (const std::int64_t visible : fill_queue_) {
    next = std::min(next, visible > now
                              ? visible
                              : std::max(write_port_free_at_, now + 1));
  }
  // Queued stores are already visible; they drain when the port frees.
  if (!store_queue_.empty()) {
    next = std::min(next, std::max(write_port_free_at_, now + 1));
  }
  return std::max(next, now + 1);
}

void SharedCacheController::collect_counters(obs::CounterSet& set,
                                             const std::string& prefix) const {
  set.add(prefix + ".reads_serviced", stats_.reads_serviced);
  set.add(prefix + ".half_misses", stats_.half_misses);
  set.add(prefix + ".stores_accepted", stats_.stores_accepted);
  set.add(prefix + ".store_queue_rejections", stats_.store_queue_rejections);
  set.add(prefix + ".fills", stats_.fills);
  set.add(prefix + ".busy_cycles", stats_.busy_cycles);
  set.add(prefix + ".total_cycles", stats_.total_cycles);
  for (std::size_t i = 0; i < stats_.arrivals_per_cycle.bucket_count(); ++i) {
    set.add(prefix + ".arrivals.bucket" + std::to_string(i),
            stats_.arrivals_per_cycle.bucket(i));
  }
}

void SharedCacheController::note_skipped_cycles(std::int64_t cycles) {
  if (cycles <= 0) return;
  // Inside a skipped window the arrival ring is all zeros (every pending
  // visible time is at or beyond the window's end), so each skipped
  // step() would have recorded a zero-arrival census; it counts as busy
  // exactly when something is still in flight.
  stats_.total_cycles += static_cast<std::uint64_t>(cycles);
  stats_.arrivals_per_cycle.add(0, static_cast<std::uint64_t>(cycles));
  if (has_pending_work()) {
    stats_.busy_cycles += static_cast<std::uint64_t>(cycles);
  }
}

void SharedCacheController::step(std::int64_t now,
                                 std::vector<ServicedRead>& out) {
  ++stats_.total_cycles;

  // Arrival census for this cycle (paper Fig. 10).
  auto& ring_slot =
      arrival_ring_[static_cast<std::size_t>(now) % arrival_ring_.size()];
  stats_.arrivals_per_cycle.add(ring_slot);
  ring_slot = 0;

  if (outstanding_ == 0) return;
  ++stats_.busy_cycles;

  // Mature pipelined stores into the drain queue.
  while (!pending_store_times_.empty() && pending_store_times_.front() <= now) {
    store_queue_.push_back(pending_store_times_.front());
    pending_store_times_.pop_front();
    --pending_stores_;
  }

  // Read arbitration: soonest-expiring visible request wins the read port
  // (or plain round-robin when configured as the ablation baseline).
  if (read_port_free_at_ <= now) {
    ReadSlot* winner = nullptr;
    std::uint32_t winner_core = 0;
    std::uint32_t tie_count = 0;
    if (params_.arbitration == ArbitrationPolicy::kRoundRobin) {
      for (std::uint32_t offset = 0; offset < slots_.size(); ++offset) {
        const std::uint32_t c =
            (rr_cursor_ + offset) % static_cast<std::uint32_t>(slots_.size());
        ReadSlot& slot = slots_[c];
        if (!slot.valid || slot.visible_at > now) continue;
        winner = &slot;
        winner_core = c;
        rr_cursor_ = (c + 1) % static_cast<std::uint32_t>(slots_.size());
        break;
      }
    } else {
      for (std::uint32_t c = 0; c < slots_.size(); ++c) {
        ReadSlot& slot = slots_[c];
        if (!slot.valid || slot.visible_at > now) continue;
        if (winner == nullptr ||
            slot.priority.slack() < winner->priority.slack()) {
          winner = &slot;
          winner_core = c;
          tie_count = 1;
        } else if (slot.priority.slack() == winner->priority.slack()) {
          // Reservoir-sample among ties: the paper breaks ties randomly.
          ++tie_count;
          if (rng_.uniform_u64(tie_count) == 0) {
            winner = &slot;
            winner_core = c;
          }
        }
      }
    }
    if (winner != nullptr) {
      out.push_back(ServicedRead{.core = winner_core,
                                 .issued_at = winner->issued_at,
                                 .serviced_at = now,
                                 .half_misses = winner->half_misses});
      winner->valid = false;
      --outstanding_;
      ++stats_.reads_serviced;
      read_port_free_at_ = now + params_.read_occupancy;
    }
  }

  // Write port: fills outrank stores.
  if (write_port_free_at_ <= now) {
    if (!fill_queue_.empty() && fill_queue_.front() <= now) {
      fill_queue_.pop_front();
      --outstanding_;
      write_port_free_at_ = now + params_.write_occupancy;
    } else if (!store_queue_.empty() && store_queue_.front() <= now) {
      store_queue_.pop_front();
      --outstanding_;
      write_port_free_at_ = now + params_.write_occupancy;
    }
  }

  // Age the survivors; expired ones half-miss and re-arm critical.
  for (ReadSlot& slot : slots_) {
    if (!slot.valid || slot.visible_at > now) continue;
    slot.priority.shift();
    if (slot.priority.expired()) {
      if (slot.half_misses == 0) ++stats_.half_misses;
      ++slot.half_misses;
      slot.priority.preload(1);
    }
  }
}

}  // namespace respin::core
