// Round-trip serialization of simulation requests and results, plus the
// canonical request key the serving layer caches and shards by.
//
// The simulator is a pure function of (config, workload-or-trace ref,
// seed, fault plan, sim params) — the determinism contract pinned by
// parallel_determinism_test and fault_test. That purity is what makes a
// SimResult a cacheable value: this module gives each request one
// canonical spelling (fixed field order, obs::format_value number text,
// result-irrelevant knobs excluded) and serializes results so that
// serialize -> parse is bit-exact, including every energy double and
// histogram bucket (tests/result_serde_test.cpp). Key semantics are
// documented in docs/serving.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/experiment.hpp"
#include "obs/json.hpp"

namespace respin::core {

/// One simulation request as the serving protocol describes it: a named
/// configuration, a workload reference (catalog benchmark, or a recorded
/// trace file), and the run options.
struct RequestSpec {
  ConfigId config = ConfigId::kShStt;
  /// Catalog benchmark name; ignored when `trace_file` is set.
  std::string benchmark = "ocean";
  /// Recorded-trace workload reference (respin_trace format). Keys built
  /// from a trace ref identify the file by path, not content — see
  /// docs/serving.md for the invalidation caveat.
  std::string trace_file;
  /// Fitted-profile workload reference (`respin_trace fit` JSON). The
  /// profile is synthesized into a workload at run time, so unlike
  /// trace_file it composes with cluster/scale/seed and fault/tech knobs.
  /// Same by-path key caveat as trace_file.
  std::string profile_file;
  RunOptions options;
};

/// Parses the request fields of a protocol object (config, benchmark /
/// trace_file / profile_file, size, cluster, scale, seed, oracle_stride,
/// faults, tech).
/// Missing fields keep their defaults; unknown names and malformed values
/// throw obs::json::Error or std::logic_error with a caller-printable
/// message.
RequestSpec request_spec_from_json(const obs::json::Value& request);

/// Serializes a spec with every key-relevant field populated; parsing it
/// back yields an identical canonical key.
obs::json::Value request_spec_to_json(const RequestSpec& spec);

/// The canonical request key: request_spec_to_json dumped with a fixed
/// field order. Two requests have equal keys iff the determinism contract
/// guarantees them bit-identical results — result-irrelevant knobs
/// (cycle_skip, trace sinks, host thread counts) are excluded, and a
/// disabled fault plan canonicalizes to the same key regardless of its
/// dormant model parameters.
std::string canonical_key(const RequestSpec& spec);

/// FNV-1a 64-bit hash of a canonical key (stable across platforms and
/// runs; published alongside results for quick reference).
std::uint64_t key_hash(std::string_view key);

/// key_hash as 16 lowercase hex digits.
std::string key_hash_hex(std::string_view key);

/// Serializes a finished result. result_from_json(result_to_json(r))
/// equals r field-for-field and bit-for-bit (doubles travel as
/// obs::format_value shortest-round-trip text).
obs::json::Value result_to_json(const SimResult& result);

/// Parses result_to_json output; throws obs::json::Error on missing or
/// mistyped fields.
SimResult result_from_json(const obs::json::Value& value);

/// Named scalar metrics of a result, for store queries and Pareto
/// extraction: cycles, seconds, instructions, energy_pj, epi_pj, watts,
/// leakage_pj, dynamic_pj, avg_active_cores. Throws std::logic_error on
/// unknown names (listing the valid ones).
double result_metric(const SimResult& result, std::string_view name);

/// The valid result_metric names, comma-separated (error messages, docs).
const char* result_metric_names();

}  // namespace respin::core
