// Architecture configurations (paper Table IV) and all derived parameters.
//
// `make_cluster_config` assembles everything a ClusterSim needs for one of
// the paper's eight named configurations at one of the three cache-size
// classes (Table I): per-core clock multipliers from the VARIUS variation
// map, cache latencies/energies from the nvsim array model, controller
// port occupancies, the MESI baseline's geometry, and the calibrated
// power model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/consolidation.hpp"
#include "core/shared_cache_controller.hpp"
#include "cpu/core_model.hpp"
#include "mem/backside.hpp"
#include "mem/private_l1.hpp"
#include "nvsim/array_model.hpp"
#include "power/energy.hpp"
#include "tech/technology.hpp"

namespace respin::core {

/// The eight named configurations of paper Table IV, plus three
/// technology-exploration configurations enabled by the pluggable
/// backend registry (nvsim::TechnologyRegistry).
enum class ConfigId {
  kPrSramNt,      ///< Baseline: NT cores, private SRAM L1 @0.65 V.
  kHpSramCmp,     ///< Alt baseline: whole chip at nominal Vdd.
  kShSramNom,     ///< Shared SRAM L1 @1.0 V, NT cores.
  kShStt,         ///< Shared STT-RAM caches @1.0 V (the proposal).
  kShSttCc,       ///< + greedy dynamic core consolidation.
  kShSttCcOracle, ///< + oracle consolidation (upper bound).
  kPrSttCc,       ///< Consolidation with *private* STT-RAM caches.
  kShSttCcOs,     ///< Consolidation driven by the OS at 1 ms epochs.
  kShPcm,         ///< Shared PCM caches @1.0 V (slow asymmetric writes).
  kShEdram,       ///< Shared eDRAM caches @1.0 V (refresh tax).
  kShHybrid,      ///< Shared hybrid L1D: 4 SRAM + 12 STT-RAM ways.
};

/// Table I cache-size classes (chip-level L2/L3 capacity).
enum class CacheSize { kSmall, kMedium, kLarge };

/// Which consolidation mechanism runs, if any.
enum class GovernorKind { kNone, kGreedy, kOracle, kOs };

const char* to_string(ConfigId id);
const char* to_string(CacheSize size);
std::vector<ConfigId> all_config_ids();

/// Parses a Table IV configuration name ("SH-STT", case-sensitive);
/// throws std::logic_error on unknown names.
ConfigId parse_config_id(const std::string& name);

/// Parses a cache size class ("small"/"medium"/"large").
CacheSize parse_cache_size(const std::string& name);

/// Fully derived cluster configuration: everything ClusterSim consumes.
struct ClusterConfig {
  std::string name;
  ConfigId id = ConfigId::kPrSramNt;
  CacheSize size_class = CacheSize::kMedium;

  std::uint32_t cluster_cores = 16;
  std::uint32_t clusters_per_chip = 4;
  bool shared_l1 = true;
  nvsim::MemTech cache_tech = nvsim::MemTech::kSttRam;
  double cache_vdd = 1.0;
  double core_vdd = 0.4;
  GovernorKind governor = GovernorKind::kNone;

  /// Per-core clock multipliers (core period / cache period), from VARIUS.
  std::vector<int> multipliers;
  /// Per-core worst-case Vth (volts) from the same VARIUS die instance;
  /// the fault model shifts each region's SRAM Vccmin by its Vth offset.
  std::vector<double> core_vth;
  /// Die-mean Vth the offsets are relative to.
  double vth_mean = 0.30;
  tech::ClusterClocking clocking;

  // Shared-L1 organization (when shared_l1).
  std::uint64_t l1_shared_capacity = 256 * 1024;
  std::uint32_t l1_line_bytes = 32;
  std::uint32_t l1i_ways = 2;
  std::uint32_t l1d_ways = 4;
  /// Hybrid L1D way partition: ways [0, hybrid_sram_ways) of every L1D set
  /// are SRAM, the remaining hybrid_nvm_ways are `cache_tech`. Both are
  /// nonzero only for a genuinely mixed array (degenerate requests collapse
  /// to the equivalent pure configuration in make_cluster_config); 0/0 —
  /// the default — is a pure array. The shared L1I stays pure `cache_tech`
  /// (instruction fetches never write, so there is nothing to steer).
  std::uint32_t hybrid_sram_ways = 0;
  std::uint32_t hybrid_nvm_ways = 0;
  ControllerParams controller;

  // Private-L1 organization (when !shared_l1).
  mem::PrivateL1Params private_l1;
  /// Core cycles a private-L1 store occupies the write port.
  std::uint32_t private_store_cycles = 1;

  mem::BacksideParams backside;
  power::PowerModel power;
  cpu::CoreTimingParams core_timing;
  GovernorParams governor_params;

  /// Whether an L1 access crosses the low->high voltage boundary.
  bool l1_crosses_domains = true;

  // Analytic barrier costs, in shared-cache cycles (see DESIGN.md §5:
  // barrier spinning is charged analytically, not per spin-read).
  std::uint32_t barrier_arrival_cycles = 2;
  std::uint32_t barrier_release_cycles = 2;
  std::uint32_t barrier_post_release_cycles = 0;
  /// Coherence messages per barrier arrival (energy accounting).
  std::uint32_t barrier_arrival_messages = 0;

  /// OS-mode timing (SH-STT-CC-OS): 1 ms epochs and timeslices.
  std::int64_t os_epoch_cycles = 2'500'000;
  std::int64_t os_quantum_cycles = 2'500'000;

  std::uint64_t seed = 1;
};

/// Calibration constants for the core power model. The defaults reproduce
/// the relative energies of paper Figs. 6-9 given the Table III cache
/// anchors (see DESIGN.md §2 and EXPERIMENTS.md for the residuals).
struct CoreCalibration {
  double epi_nominal_pj = 30000.0;  ///< Core dynamic energy/instr @1.0 V.
  double leakage_nominal_w = 69.2;  ///< Core leakage @1.0 V.
  double dram_access_pj = 20000.0;
  double uncore_w = 0.5;            ///< Per cluster: PLL, clock spine, VCM.
  /// Speed margin of core critical paths relative to the 0.4 ns cache
  /// reference path (cores are logic-limited, caches array-limited).
  double core_path_speedup = 1.5;
};

/// Optional technology overrides applied on top of a named configuration's
/// traits (CLI: --shared-tech / --private-tech / --hybrid-ways). The
/// defaults leave the named configuration untouched.
struct TechOverride {
  /// Replaces the cache technology when the configuration shares its L1
  /// (applies to the whole cache-rail hierarchy: L1 + L2/L3 slices).
  std::optional<nvsim::MemTech> shared_tech;
  /// Replaces the cache technology when the L1s are private.
  std::optional<nvsim::MemTech> private_tech;
  /// Requested L1D way partition; 0/0 means "as named". S+0 and 0+N are
  /// accepted and collapse to the equivalent pure configuration.
  std::uint32_t hybrid_sram_ways = 0;
  std::uint32_t hybrid_nvm_ways = 0;
};

/// Builds the derived configuration for (config, size class) with
/// `cluster_cores` cores per cluster on a 64-core chip. `seed` selects the
/// process-variation die instance.
ClusterConfig make_cluster_config(ConfigId id, CacheSize size,
                                  std::uint32_t cluster_cores = 16,
                                  std::uint64_t seed = 1,
                                  const CoreCalibration& cal = {},
                                  std::uint32_t first_core = 0,
                                  const TechOverride& tech = {});

/// Chip-level L2/L3 capacities per Table I.
std::uint64_t chip_l2_bytes(CacheSize size);
std::uint64_t chip_l3_bytes(CacheSize size);

}  // namespace respin::core
