// Oracle consolidation driver (SH-STT-CC-Oracle, paper §V.C/F).
//
// The paper's oracle picks the optimal active-core count at every
// evaluation interval. Because ClusterSim is a value type, the driver
// implements this by snapshotting the simulator at each epoch boundary,
// replaying the upcoming epoch once per candidate count, committing the
// count with the lowest measured EPI, and discarding the trials.
#pragma once

#include "core/cluster_sim.hpp"

namespace respin::core {

struct OracleParams {
  /// Candidate counts are {min, min+stride, ...} plus the neighbours of
  /// the current count; stride 1 is the exhaustive paper oracle.
  std::uint32_t stride = 2;
};

/// Runs `sim` to completion under oracle control and returns its result.
/// `sim` must be configured with GovernorKind::kOracle (run() defers to
/// this driver for that configuration).
SimResult run_with_oracle(ClusterSim& sim, const OracleParams& params = {});

}  // namespace respin::core
