#include "core/oracle.hpp"

#include <algorithm>
#include <set>

#include "util/require.hpp"

namespace respin::core {

namespace {

std::set<std::uint32_t> candidate_counts(std::uint32_t current,
                                         std::uint32_t min_active,
                                         std::uint32_t max_active,
                                         std::uint32_t stride) {
  std::set<std::uint32_t> candidates;
  for (std::uint32_t k = min_active; k <= max_active; k += stride) {
    candidates.insert(k);
  }
  candidates.insert(max_active);
  // Always include the local neighbourhood so the committed count can move
  // smoothly even with a coarse stride.
  for (std::int64_t d = -1; d <= 1; ++d) {
    const std::int64_t k = static_cast<std::int64_t>(current) + d;
    if (k >= min_active && k <= max_active) {
      candidates.insert(static_cast<std::uint32_t>(k));
    }
  }
  return candidates;
}

}  // namespace

SimResult run_with_oracle(ClusterSim& sim, const OracleParams& params) {
  RESPIN_REQUIRE(params.stride >= 1, "oracle stride must be >= 1");
  const std::uint32_t min_active =
      sim.config().governor_params.min_active_cores;
  const std::uint32_t max_active = sim.config().cluster_cores;

  while (!sim.done()) {
    const auto candidates = candidate_counts(sim.active_cores(), min_active,
                                             max_active, params.stride);
    std::uint32_t best = sim.active_cores();
    double best_epi = std::numeric_limits<double>::infinity();
    for (std::uint32_t k : candidates) {
      ClusterSim trial = sim;  // Full architectural snapshot.
      trial.set_active_cores(k);
      if (!trial.run_one_epoch()) {
        // Workload ends inside this epoch: count total energy instead.
        SimResult r = trial.result();
        const double epi = r.epi_pj();
        if (epi < best_epi) {
          best_epi = epi;
          best = k;
        }
        continue;
      }
      if (trial.last_epoch_epi() < best_epi) {
        best_epi = trial.last_epoch_epi();
        best = k;
      }
    }
    sim.set_active_cores(best);
    if (!sim.run_one_epoch()) break;
  }
  return sim.result();
}

}  // namespace respin::core
