// Cycle-stepped simulator for one Respin cluster.
//
// Time advances in shared-cache cycles (0.4 ns). Cores tick at integer
// multiples of that clock (their VARIUS-assigned multiplier), so every
// cache request aligns with a cache-cycle boundary — exactly the clocking
// scheme of paper §II. The shared-L1 data path is simulated cycle by cycle
// through SharedCacheController (request registers, priority shift
// registers, half-misses); L2/L3/DRAM and the private-L1 MESI baseline are
// latency-charged through respin::mem.
//
// The whole simulator is a value type: copying it snapshots the complete
// architectural + microarchitectural state, which is how the oracle
// consolidation study replays epochs (see oracle.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/consolidation.hpp"
#include "core/shared_cache_controller.hpp"
#include "cpu/core_model.hpp"
#include "fault/fault.hpp"
#include "mem/backside.hpp"
#include "mem/cache_array.hpp"
#include "mem/private_l1.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"
#include "power/energy.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace respin::core {

struct SimParams {
  double workload_scale = 1.0;  ///< Multiplies phase instruction counts.
  std::uint64_t seed = 1;       ///< Workload + arbitration seed.
  std::int64_t max_cycles = 400'000'000;  ///< Safety valve (cache cycles).
  /// Event-driven clock: when the shared-cache controller has nothing in
  /// flight, jump straight to the next scheduled event (core tick, fill
  /// return, epoch boundary) instead of stepping cycle by cycle. Results
  /// are bit-identical either way (see docs/performance.md); the switch
  /// exists so the determinism tests can pin that down.
  bool cycle_skip = true;
  /// Structured trace destination (epoch boundaries, consolidation
  /// decisions — see docs/observability.md for the schema). Null disables
  /// tracing; emission only reads simulator state, so results are
  /// bit-identical with tracing on or off.
  obs::TraceSink* trace = nullptr;
  /// Fault-injection plan (see docs/faults.md). Disabled by default; a
  /// disabled plan never seeds a fault stream, keeping results
  /// bit-identical to the fault-free golden grid.
  fault::FaultPlan faults;
};

/// One point of the consolidation trace (paper Figs. 12/13).
struct ConsolidationSample {
  std::int64_t cycle = 0;
  std::uint32_t active_cores = 0;
  double epi_pj = 0.0;
};

/// Everything a bench/test wants to know about one finished run.
struct SimResult {
  std::string config_name;
  std::string benchmark;
  std::int64_t cycles = 0;
  double seconds = 0.0;
  std::uint64_t instructions = 0;
  bool hit_cycle_limit = false;

  power::ActivityCounts counts;
  power::EnergyBreakdown energy;

  // Shared-L1 data-cache behaviour (paper Figs. 10/11); empty histograms
  // for private-cache configurations.
  util::Histogram read_hit_latency{8};  ///< Bucket = core cycles to hit.
  std::uint64_t dl1_read_hits = 0;
  std::uint64_t dl1_read_misses = 0;
  std::uint64_t dl1_half_misses = 0;
  std::uint64_t dl1_store_rejections = 0;
  util::Histogram dl1_arrivals{9};
  std::uint64_t dl1_cycles = 0;

  // Consolidation behaviour (paper Figs. 12-14).
  std::vector<ConsolidationSample> trace;
  double avg_active_cores = 0.0;
  std::uint32_t min_active_cores = 0;
  std::uint32_t max_active_cores = 0;

  // Hybrid L1D way partition (surfaced as tech.* metrics); both zero on
  // pure arrays. The SRAM-class access counts live in counts.l1_sram_*.
  std::uint32_t hybrid_sram_ways = 0;
  std::uint32_t hybrid_nvm_ways = 0;

  // Fault injection (respin::fault); all zero when faults were disabled.
  bool faults_enabled = false;
  fault::FaultStats faults;
  std::uint64_t fault_l1_disabled_ways = 0;
  std::uint64_t fault_l1_correctable_ways = 0;
  std::uint64_t fault_l1_usable_bytes = 0;  ///< Effective L1 capacity.
  std::uint64_t fault_l1_total_bytes = 0;

  double epi_pj() const {
    return power::energy_per_instruction(energy, instructions);
  }
  double watts() const {
    return seconds > 0.0 ? energy.total() * 1e-12 / seconds : 0.0;
  }
};

class ClusterSim {
 public:
  ClusterSim(ClusterConfig config, const workload::WorkloadSpec& spec,
             const SimParams& params);

  /// Workload-frontend constructor: drives the cluster from any op-source
  /// factory (synthetic generator, recorded trace, ...). `sources` is
  /// called once per virtual core with (thread_id, cluster_cores) and must
  /// return a non-empty stream. `benchmark_name` labels SimResult rows.
  ClusterSim(ClusterConfig config, std::string benchmark_name,
             const workload::OpSourceFactory& sources,
             const SimParams& params);

  /// Runs to completion, driving the configured governor internally
  /// (greedy/OS). Oracle configurations are driven externally via
  /// run_one_epoch — see oracle.hpp.
  void run();

  /// Advances until the next epoch boundary (or completion) WITHOUT
  /// applying a governor decision; returns false when the workload is
  /// done. Used by the oracle driver.
  bool run_one_epoch();

  bool done() const { return finished_vcores_ == vcores_.size(); }

  /// Externally forces the active-core count (oracle driver).
  void set_active_cores(std::uint32_t count);
  std::uint32_t active_cores() const { return active_count_; }

  /// EPI (pJ/instr) of the last completed epoch; +inf before the first.
  double last_epoch_epi() const { return last_epoch_epi_; }

  /// Elapsed simulated time in cache cycles.
  std::int64_t now() const { return now_; }

  /// Snapshot of metrics; callable mid-run (oracle) or at completion.
  SimResult result();

  /// Diagnostic: one line per virtual core describing its scheduling and
  /// wait state (useful when investigating a run that stopped making
  /// progress under an experimental configuration).
  std::string describe_state() const;

  /// Exports the full counter registry: per-core busy/idle/multiplier,
  /// per-vcore committed instructions, shared-cache controller statistics
  /// ("dl1.*") or private-L1 coherence counters ("pl1.*"), and backside
  /// traffic ("backside.*"). Finer-grained than SimResult; callable
  /// mid-run or at completion.
  void collect_counters(obs::CounterSet& set) const;

  const ClusterConfig& config() const { return cfg_; }

 private:
  struct PendingRead {
    bool valid = false;
    std::uint32_t vcore = 0;
    mem::Addr addr = 0;
  };
  struct FillEvent {
    std::int64_t cycle = 0;
    mem::Addr addr = 0;
    bool instruction = false;
    /// STT write retries drawn when the fill was created (the draw happens
    /// at a deterministic event point; the latency is already folded into
    /// `cycle`, the energy is charged when the fill applies).
    std::uint32_t retries = 0;
    /// Retry budget exhausted: the fill is dropped (line stays uncached).
    bool drop = false;
    /// Store-allocate fill: carries store data, which writes through to
    /// the backside when the fill drops or its set is disabled.
    bool store = false;
    bool operator>(const FillEvent& o) const { return cycle > o.cycle; }
  };
  struct BarrierState {
    std::int64_t completed = -1;       ///< Highest released barrier id.
    std::uint32_t arrived = 0;
    std::int64_t line_free_at = 0;     ///< Arrival-update serialization.
    std::int64_t last_release = 0;
    std::int64_t latest_arrival = 0;
  };

  void step_cycle();
  void advance_clock();
  void step_core(std::uint32_t pid);
  void fast_forward_idle(std::uint32_t pid);
  /// Jumps `pid`'s next tick to its first boundary at or after `ready`,
  /// crediting the skipped boundary ticks as idle polls. Callers guard
  /// eligibility (cycle_skip, no observed epochs, single resident thread).
  void jump_idle_to(std::uint32_t pid, std::int64_t ready);
  void execute_vcore(std::uint32_t pid, std::uint32_t vid);
  /// Replays the interior of a compute run in a tight loop (identical
  /// arithmetic, no per-tick cluster scan) and jumps the core's next
  /// boundary past the elided ticks. See the comment in the definition.
  void elide_compute_ticks(std::uint32_t pid, std::uint32_t vid);
  void issue_load(std::uint32_t pid, std::uint32_t vid);
  bool issue_store(std::uint32_t pid, std::uint32_t vid);
  void arrive_barrier(std::uint32_t pid, std::uint32_t vid);
  bool barrier_released(const cpu::VirtualCore& v) const;
  void commit_instructions(std::uint32_t pid, std::uint32_t vid,
                           std::uint32_t n);
  void do_ifetch(std::uint32_t pid, std::uint32_t vid);
  void handle_serviced_read(const ServicedRead& serviced);
  void apply_fill(const FillEvent& event);
  bool try_context_switch(std::uint32_t pid);
  void rotate_vcore(std::uint32_t pid, std::uint32_t penalty_cycles);
  void on_epoch_boundary();
  bool at_epoch_boundary() const;
  void emit_epoch_event();
  void apply_active_count(std::uint32_t target);
  void power_down_one();
  void power_up_one();
  void migrate_vcore(std::uint32_t vid, std::uint32_t to);
  void sync_power_integral();
  power::ActivityCounts current_counts();
  std::int64_t next_boundary_after(std::uint32_t pid,
                                   std::int64_t ready) const;
  /// Sums disabled/correctable ways and usable/total bytes over every L1
  /// array (shared or private) for the fault-capacity report.
  void fault_capacity(std::uint64_t* disabled, std::uint64_t* correctable,
                      std::uint64_t* usable, std::uint64_t* total) const;

  ClusterConfig cfg_;
  SimParams params_;
  std::string benchmark_name_;
  std::int64_t now_ = 0;
  /// Cached min of core_next_tick_: the core scan runs only on cycles
  /// where some core actually ticks, and the event-driven clock jumps to
  /// it when the cache side is quiescent.
  std::int64_t next_core_tick_ = 0;
  /// True when epoch boundaries are observable (a governor is configured
  /// or run_one_epoch drives the sim), which pins the clock to boundary
  /// cycles so epoch bookkeeping matches the cycle-by-cycle schedule.
  bool epoch_watched_ = false;

  std::vector<cpu::VirtualCore> vcores_;
  std::vector<cpu::PhysicalCore> cores_;
  /// Next core-cycle boundary per physical core, kept out of PhysicalCore
  /// so the per-cycle tick scan walks one contiguous array.
  std::vector<std::int64_t> core_next_tick_;
  /// Boundary tick a barrier-parked core would next have polled on, or
  /// kNever when the core is live. A parked core has core_next_tick_ set
  /// to kNever (no boundary polls while it waits); barrier completion —
  /// or end-of-run reconciliation when max_cycles cuts the wait short —
  /// restores the schedule and credits the skipped polls as idle ticks.
  std::vector<std::int64_t> parked_at_;
  /// Set when a barrier completion moves another core's next tick backward
  /// (unparking): the fold-as-you-go minimum in the tick scan is then stale
  /// and must be recomputed before the clock advances.
  bool tick_rescan_needed_ = false;
  std::vector<std::uint32_t> host_of_;  ///< vcore -> physical core.
  std::vector<std::uint32_t> efficiency_order_;
  std::uint32_t active_count_ = 0;
  std::uint32_t finished_vcores_ = 0;

  // Shared-L1 machinery (engaged when cfg_.shared_l1).
  std::optional<SharedCacheController> dl1_ctrl_;
  std::optional<mem::CacheArray> l1i_;
  std::optional<mem::CacheArray> l1d_;
  std::vector<PendingRead> pending_reads_;
  std::vector<ServicedRead> serviced_scratch_;
  std::priority_queue<FillEvent, std::vector<FillEvent>,
                      std::greater<FillEvent>>
      fill_events_;

  // Private-L1 machinery (engaged otherwise).
  std::optional<mem::PrivateL1System> private_l1_;

  // Fault injection (respin::fault); disengaged unless the plan enables
  // it, in which case the constructor builds the cell maps and arms the
  // dynamic draw points.
  std::optional<fault::FaultInjector> injector_;
  bool stt_write_faults_ = false;
  fault::FaultInjector* fault_injector() {
    return injector_ ? &*injector_ : nullptr;
  }

  mem::Backside backside_;
  BarrierState barrier_;

  power::ActivityCounts counts_;
  std::int64_t power_integral_mark_ = 0;
  std::uint32_t powered_cores_ = 0;

  // Epoch bookkeeping.
  std::optional<GreedyGovernor> governor_;
  power::ActivityCounts epoch_counts_;
  std::int64_t epoch_start_ = 0;
  std::uint64_t next_epoch_instructions_ = 0;
  std::int64_t next_epoch_cycle_ = 0;
  double last_epoch_epi_ = std::numeric_limits<double>::infinity();

  // Metrics.
  util::Histogram read_hit_latency_{8};
  std::uint64_t dl1_read_hits_ = 0;
  std::uint64_t dl1_read_misses_ = 0;
  std::vector<ConsolidationSample> trace_;
  util::RunningStat active_stat_;
};

/// Builds a ClusterSim for (config, benchmark name) with the given params.
ClusterSim make_sim(const ClusterConfig& config, const std::string& benchmark,
                    const SimParams& params);

}  // namespace respin::core
