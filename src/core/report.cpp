#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace respin::core {

std::string result_csv_header() {
  return "config,benchmark,cycles,seconds,instructions,"
         "core_dynamic_pj,core_leakage_pj,cache_dynamic_pj,cache_leakage_pj,"
         "dram_pj,network_pj,total_pj,epi_pj,watts,"
         "l1_reads,l1_writes,l2_reads,l3_reads,dram_accesses,"
         "coherence_messages,dl1_read_hits,dl1_read_misses,dl1_half_misses,"
         "avg_active_cores,min_active_cores,max_active_cores";
}

std::string result_csv_row(const SimResult& r) {
  std::ostringstream os;
  os << r.config_name << ',' << r.benchmark << ',' << r.cycles << ','
     << r.seconds << ',' << r.instructions << ',' << r.energy.core_dynamic
     << ',' << r.energy.core_leakage << ',' << r.energy.cache_dynamic << ','
     << r.energy.cache_leakage << ',' << r.energy.dram << ','
     << r.energy.network << ',' << r.energy.total() << ',' << r.epi_pj()
     << ',' << r.watts() << ',' << r.counts.l1_reads << ','
     << r.counts.l1_writes << ',' << r.counts.l2_reads << ','
     << r.counts.l3_reads << ',' << r.counts.dram_accesses << ','
     << r.counts.coherence_messages << ',' << r.dl1_read_hits << ','
     << r.dl1_read_misses << ',' << r.dl1_half_misses << ','
     << r.avg_active_cores << ',' << r.min_active_cores << ','
     << r.max_active_cores;
  return os.str();
}

void write_results_csv(std::ostream& os,
                       const std::vector<SimResult>& results) {
  os << result_csv_header() << '\n';
  for (const SimResult& r : results) os << result_csv_row(r) << '\n';
}

void write_trace_csv(std::ostream& os, const SimResult& result) {
  os << "time_us,active_cores,epi_nj\n";
  for (const ConsolidationSample& s : result.trace) {
    os << static_cast<double>(s.cycle) * 0.4e-3 << ',' << s.active_cores
       << ',' << s.epi_pj * 1e-3 << '\n';
  }
}

std::string summarize(const SimResult& r) {
  std::ostringstream os;
  os << r.config_name << '/' << r.benchmark << ": "
     << util::fixed(r.seconds * 1e3, 2) << " ms, "
     << util::fixed(r.watts(), 1) << " W, "
     << util::fixed(r.energy.total() * 1e-9, 1) << " mJ, EPI "
     << util::fixed(r.epi_pj() * 1e-3, 1) << " nJ";
  return os.str();
}

std::string chip_csv_header() {
  return "config,benchmark,clusters,seconds,instructions,total_pj,watts";
}

std::string chip_csv_row(const ChipResult& r) {
  std::ostringstream os;
  os << r.config_name << ',' << r.benchmark << ',' << r.clusters.size()
     << ',' << r.seconds << ',' << r.instructions << ','
     << r.energy.total() << ',' << r.watts();
  return os.str();
}

}  // namespace respin::core
