#include "core/experiment.hpp"

#include <map>

#include "util/require.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace respin::core {

SimResult run_experiment(ConfigId id, const std::string& benchmark,
                         const RunOptions& options) {
  const ClusterConfig config = make_cluster_config(
      id, options.size, options.cluster_cores, options.seed);
  SimParams params;
  params.workload_scale = options.workload_scale;
  params.seed = options.seed;
  ClusterSim sim(config, workload::benchmark(benchmark), params);
  if (config.governor == GovernorKind::kOracle) {
    return run_with_oracle(sim, OracleParams{.stride = options.oracle_stride});
  }
  sim.run();
  return sim.result();
}

std::vector<SimResult> run_suite(ConfigId id, const RunOptions& options) {
  std::vector<SimResult> results;
  for (const std::string& name : workload::benchmark_names()) {
    results.push_back(run_experiment(id, name, options));
  }
  return results;
}

double mean_ratio(const std::vector<SimResult>& results,
                  const std::vector<SimResult>& baseline, Metric metric) {
  std::map<std::string, const SimResult*> base_by_name;
  for (const SimResult& b : baseline) base_by_name[b.benchmark] = &b;

  auto value = [metric](const SimResult& r) {
    return metric == Metric::kSeconds ? r.seconds : r.energy.total();
  };

  std::vector<double> ratios;
  for (const SimResult& r : results) {
    auto it = base_by_name.find(r.benchmark);
    RESPIN_REQUIRE(it != base_by_name.end(),
                   "baseline is missing benchmark " + r.benchmark);
    const double base = value(*it->second);
    RESPIN_REQUIRE(base > 0.0, "baseline metric must be positive");
    ratios.push_back(value(r) / base);
  }
  return util::geometric_mean(ratios);
}

}  // namespace respin::core
