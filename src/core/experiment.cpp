#include "core/experiment.hpp"

#include <map>

#include "exec/parallel.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace respin::core {

namespace {

/// Completion record for the structured trace (schema in
/// docs/observability.md).
void emit_run_complete(obs::TraceSink* sink, const SimResult& result) {
  if (sink == nullptr) return;
  obs::Event event("run_complete");
  event.str("config", result.config_name)
      .str("benchmark", result.benchmark)
      .i64("cycles", result.cycles)
      .f64("seconds", result.seconds)
      .i64("instructions", static_cast<std::int64_t>(result.instructions))
      .f64("energy_pj", result.energy.total())
      .f64("epi_pj", result.epi_pj())
      .i64("hit_cycle_limit", result.hit_cycle_limit ? 1 : 0);
  sink->record(event);
}

}  // namespace

SimResult run_experiment(ConfigId id, const std::string& benchmark,
                         const RunOptions& options) {
  const ClusterConfig config = make_cluster_config(
      id, options.size, options.cluster_cores, options.seed,
      CoreCalibration{}, /*first_core=*/0, options.tech);
  SimParams params;
  params.workload_scale = options.workload_scale;
  params.seed = options.seed;
  params.cycle_skip = options.cycle_skip;
  params.trace = options.trace;
  params.faults = options.faults;
  ClusterSim sim(config, workload::benchmark(benchmark), params);
  SimResult result;
  if (config.governor == GovernorKind::kOracle) {
    result =
        run_with_oracle(sim, OracleParams{.stride = options.oracle_stride});
  } else {
    sim.run();
    result = sim.result();
  }
  emit_run_complete(options.trace, result);
  return result;
}

std::vector<SimResult> run_suite(ConfigId id, const RunOptions& options) {
  const std::vector<std::string> names = workload::benchmark_names();
  return exec::parallel_map(names, [&](const std::string& name) {
    return run_experiment(id, name, options);
  });
}

std::vector<std::vector<SimResult>> run_matrix(
    const std::vector<ConfigId>& configs,
    const std::vector<std::string>& benchmarks,
    const RunOptions& options) {
  const std::size_t columns = benchmarks.size();
  std::vector<std::vector<SimResult>> rows(configs.size());
  if (columns == 0) return rows;
  // Flatten the grid so the pool load-balances across the whole sweep
  // (one slow configuration doesn't serialize its row).
  std::vector<SimResult> cells =
      exec::parallel_map_n(configs.size() * columns, [&](std::size_t i) {
        return run_experiment(configs[i / columns], benchmarks[i % columns],
                              options);
      });
  for (std::size_t r = 0; r < configs.size(); ++r) {
    rows[r].assign(std::make_move_iterator(cells.begin() + r * columns),
                   std::make_move_iterator(cells.begin() + (r + 1) * columns));
  }
  return rows;
}

double mean_ratio(const std::vector<SimResult>& results,
                  const std::vector<SimResult>& baseline, Metric metric) {
  std::map<std::string, const SimResult*> base_by_name;
  for (const SimResult& b : baseline) base_by_name[b.benchmark] = &b;

  auto value = [metric](const SimResult& r) {
    return metric == Metric::kSeconds ? r.seconds : r.energy.total();
  };

  std::vector<double> ratios;
  for (const SimResult& r : results) {
    auto it = base_by_name.find(r.benchmark);
    RESPIN_REQUIRE(it != base_by_name.end(),
                   "baseline is missing benchmark " + r.benchmark);
    const double base = value(*it->second);
    RESPIN_REQUIRE(base > 0.0, "baseline metric must be positive");
    ratios.push_back(value(r) / base);
  }
  return util::geometric_mean(ratios);
}

}  // namespace respin::core
