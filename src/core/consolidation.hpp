// Dynamic core consolidation: the virtual core monitor's energy
// optimization algorithm (paper §III.B, Fig. 5) and the core remapper's
// efficiency ranking (paper §III.C).
//
// The greedy governor observes energy-per-instruction (EPI) each epoch and
// walks the active-core count up or down one core at a time: keep moving
// while EPI improves, reverse on regression, hold when the change is below
// a threshold, and back off exponentially (2, 4, 8, 16, 32 epochs) when an
// oscillation between neighbouring states is detected.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace respin::core {

struct GovernorParams {
  /// Consolidation interval (cluster-wide committed instructions). The
  /// paper uses 160K against multi-billion-instruction SPLASH2/PARSEC
  /// runs; our synthetic workloads are ~1000x shorter, so the epoch is
  /// scaled down to preserve the epochs-per-program-phase ratio that the
  /// greedy search needs to track workload behaviour (see DESIGN.md §5).
  std::uint64_t epoch_instructions = 40'000;
  /// Relative EPI change below which the state is held.
  double epi_threshold = 0.02;
  std::uint32_t min_active_cores = 1;
  /// Exponential back-off schedule bounds (epochs).
  std::uint32_t backoff_initial = 2;
  std::uint32_t backoff_max = 32;
  /// Relative EPI jump that signals a program phase change and cancels an
  /// active back-off hold (holding through a phase change would freeze
  /// the search in a state chosen for the previous phase).
  double phase_change_threshold = 0.25;
};

/// Greedy EPI-descent state machine. Pure decision logic: feed it the
/// measured EPI at each epoch boundary and it returns the active-core
/// count to use for the next epoch.
class GreedyGovernor {
 public:
  GreedyGovernor(const GovernorParams& params, std::uint32_t max_active);

  /// Epoch boundary: `epi` is the finished epoch's energy/instruction,
  /// `current_active` the count it ran with. Returns the next count.
  std::uint32_t decide(double epi, std::uint32_t current_active);

  /// Epochs the governor still wants to hold (back-off); informational.
  std::uint32_t hold_remaining() const { return hold_remaining_; }

  const GovernorParams& params() const { return params_; }

 private:
  std::uint32_t clamp(std::int64_t count) const;
  bool detect_oscillation() const;

  GovernorParams params_;
  std::uint32_t max_active_;
  bool has_previous_ = false;
  double previous_epi_ = 0.0;
  int direction_ = -1;  ///< -1: shutting cores down; +1: turning back on.
  std::uint32_t hold_remaining_ = 0;
  std::uint32_t backoff_epochs_ = 0;
  std::deque<std::uint32_t> history_;  ///< Recent decided counts.
};

/// Efficiency ranking used by the remapper: faster cores (smaller clock
/// multiplier) are more energy-efficient because leakage is a fixed cost
/// (paper §III.C). Returns physical core ids sorted most-efficient first;
/// ties broken by lower id.
std::vector<std::uint32_t> efficiency_ranking(
    const std::vector<int>& multipliers);

/// Round-robin assignment of `vcore_count` virtual cores across the
/// `active` physical cores (given most-efficient first), starting with the
/// most efficient so that consolidated threads land on fast cores.
/// Returns vcore -> physical core.
std::vector<std::uint32_t> round_robin_assignment(
    const std::vector<std::uint32_t>& active, std::uint32_t vcore_count);

}  // namespace respin::core
