// Trace-driven workload frontend: executes a decoded trace through the
// core model via the workload::OpSource interface, plus the
// replay/verify drivers behind `respin_trace replay|verify`.
//
// Correctness contract (pinned by tests/trace_test.cpp and the verify
// subcommand): for every benchmark and every Table IV configuration,
// replaying a recorded trace reproduces the live synthetic run's
// SimResult bit for bit — same cycles, same energy doubles, same
// histograms, same consolidation trace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "trace/reader.hpp"
#include "workload/op_source.hpp"

namespace respin::trace {

/// One thread's cursor over the immutable decoded trace. Copies share the
/// decoded data and duplicate only the cursor, so ClusterSim snapshots
/// (oracle trial epochs) stay cheap and roll back exactly.
class TraceOpSource final : public workload::OpSource {
 public:
  TraceOpSource(std::shared_ptr<const TraceData> data, std::uint32_t thread);

  /// Replays the recorded ops in order; kFinished forever past the end.
  workload::Op next() override;

  /// Replays the recorded ifetch stream; throws TraceError(kMismatch) if
  /// the configuration requests more fetches than the recorded budget.
  mem::Addr next_ifetch_addr() override;

  std::unique_ptr<workload::OpSource> clone() const override {
    return std::make_unique<TraceOpSource>(*this);
  }

 private:
  std::shared_ptr<const TraceData> data_;
  std::uint32_t thread_;
  std::size_t op_pos_ = 0;
  std::size_t ifetch_pos_ = 0;
};

/// Factory over a decoded trace; the data is shared by every stream.
workload::OpSourceFactory trace_factory(
    std::shared_ptr<const TraceData> data);

/// Replay knobs. Workload scale, seed and thread count are NOT here: they
/// come from the trace header, because both the die-variation map and the
/// controller arbitration streams must be seeded exactly as the live run
/// was for bit-identical results.
struct ReplayOptions {
  core::CacheSize size = core::CacheSize::kMedium;
  bool cycle_skip = true;
  std::uint32_t oracle_stride = 2;
};

/// Runs `data` through configuration `id` exactly as run_experiment runs
/// the live synthetic workload (oracle configurations included). Throws
/// TraceError(kMismatch) when the configuration's cluster_cores disagrees
/// with the trace's thread count.
core::SimResult replay_trace(core::ConfigId id, const TraceData& data,
                             const ReplayOptions& options = {});

/// The live counterpart of replay_trace: reruns the recorded benchmark
/// synthetically with the trace header's scale/seed/thread count.
core::SimResult live_run_for(core::ConfigId id, const TraceData& data,
                             const ReplayOptions& options = {});

/// Field-by-field bit-identity diff of two SimResults; returns "" when
/// identical, otherwise one line per drifted field. (The gtest twin lives
/// in tests/sim_result_eq.hpp; this one serves the CLI.)
std::string diff_results(const core::SimResult& a, const core::SimResult& b);

}  // namespace respin::trace
