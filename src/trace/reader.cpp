#include "trace/reader.hpp"

namespace respin::trace {

namespace {

/// Reads exactly `n` bytes or throws kTruncated (kIo on a stream error
/// that is not EOF).
std::vector<std::uint8_t> read_exact(std::ifstream& is, std::size_t n,
                                     const char* what) {
  std::vector<std::uint8_t> bytes(n);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    if (is.bad()) {
      throw TraceError(TraceErrorKind::kIo, std::string("read failed in ") +
                                                what);
    }
    throw TraceError(TraceErrorKind::kTruncated,
                     std::string("EOF inside ") + what);
  }
  return bytes;
}

}  // namespace

std::uint64_t TraceData::total_ops() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.ops.size();
  return n;
}

std::uint64_t TraceData::total_ifetches() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.ifetch.size();
  return n;
}

std::uint64_t TraceData::total_instructions() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.instructions;
  return n;
}

TraceReader::TraceReader(const std::string& path)
    : is_(path, std::ios::binary), path_(path) {
  if (!is_) {
    throw TraceError(TraceErrorKind::kIo, "cannot open " + path);
  }

  // Fixed-size prefix: magic..scale (4+2+2+4+8+8) + name_len (2).
  std::vector<std::uint8_t> prefix = read_exact(is_, 30, "header");
  ByteReader br(prefix);
  if (br.u32() != kMagic) {
    throw TraceError(TraceErrorKind::kBadMagic, path + " is not a respin trace");
  }
  const std::uint16_t version = br.u16();
  if (version != kVersion) {
    throw TraceError(TraceErrorKind::kBadVersion,
                     "version " + std::to_string(version) + ", expected " +
                         std::to_string(kVersion));
  }
  br.u16();  // Reserved.
  header_.thread_count = br.u32();
  if (header_.thread_count == 0 || header_.thread_count > kMaxThreads) {
    throw TraceError(TraceErrorKind::kBadHeader,
                     "thread count " + std::to_string(header_.thread_count) +
                         " outside [1, " + std::to_string(kMaxThreads) + "]");
  }
  header_.seed = br.u64();
  header_.scale = br.f64();
  if (!(header_.scale > 0.0)) {
    throw TraceError(TraceErrorKind::kBadHeader, "non-positive scale");
  }
  const std::uint16_t name_len = br.u16();
  if (name_len > kMaxNameLen) {
    throw TraceError(TraceErrorKind::kBadHeader, "benchmark name too long");
  }

  const std::vector<std::uint8_t> name_bytes =
      name_len > 0 ? read_exact(is_, name_len, "header name")
                   : std::vector<std::uint8_t>{};
  header_.benchmark.assign(name_bytes.begin(), name_bytes.end());

  const std::vector<std::uint8_t> crc_bytes = read_exact(is_, 4, "header CRC");
  std::vector<std::uint8_t> covered = prefix;
  covered.insert(covered.end(), name_bytes.begin(), name_bytes.end());
  const std::uint32_t stored = ByteReader(crc_bytes).u32();
  if (stored != crc32(covered)) {
    throw TraceError(TraceErrorKind::kCrcMismatch, "header checksum failed");
  }
}

bool TraceReader::next_chunk(Chunk& out) {
  if (at_end_) return false;

  const std::vector<std::uint8_t> thread_bytes =
      read_exact(is_, 4, "chunk header");
  const std::uint32_t thread = ByteReader(thread_bytes).u32();
  if (thread == kEndMarker) {
    at_end_ = true;
    // Anything after the end marker is not ours; reject it loudly rather
    // than silently ignoring appended garbage.
    char extra = 0;
    if (is_.read(&extra, 1).gcount() == 1) {
      throw TraceError(TraceErrorKind::kBadRecord,
                       "trailing bytes after end marker");
    }
    return false;
  }
  if (thread >= header_.thread_count) {
    throw TraceError(TraceErrorKind::kBadRecord,
                     "chunk thread " + std::to_string(thread) +
                         " >= thread count " +
                         std::to_string(header_.thread_count));
  }

  const std::vector<std::uint8_t> rest = read_exact(is_, 9, "chunk header");
  ByteReader br(rest);
  const std::uint8_t kind = br.u8();
  if (kind > static_cast<std::uint8_t>(StreamKind::kIfetch)) {
    throw TraceError(TraceErrorKind::kBadRecord,
                     "unknown stream kind " + std::to_string(kind));
  }
  const std::uint32_t record_count = br.u32();
  const std::uint32_t payload_len = br.u32();
  if (payload_len == 0 || payload_len > kMaxChunkPayload) {
    throw TraceError(TraceErrorKind::kBadRecord,
                     "chunk payload length " + std::to_string(payload_len) +
                         " outside [1, " + std::to_string(kMaxChunkPayload) +
                         "]");
  }

  out.thread = thread;
  out.kind = static_cast<StreamKind>(kind);
  out.record_count = record_count;
  out.payload = read_exact(is_, payload_len, "chunk payload");

  const std::vector<std::uint8_t> crc_bytes = read_exact(is_, 4, "chunk CRC");
  if (ByteReader(crc_bytes).u32() != crc32(out.payload)) {
    throw TraceError(TraceErrorKind::kCrcMismatch,
                     "chunk checksum failed (thread " +
                         std::to_string(thread) + ")");
  }
  return true;
}

void decode_chunk(const Chunk& chunk, DecodeState& state, ThreadTrace& out) {
  ByteReader br(chunk.payload);
  std::uint32_t records = 0;

  if (chunk.kind == StreamKind::kIfetch) {
    while (!br.done()) {
      state.last_ifetch_addr = static_cast<mem::Addr>(
          static_cast<std::int64_t>(state.last_ifetch_addr) + br.svarint());
      out.ifetch.push_back(state.last_ifetch_addr);
      ++records;
    }
  } else {
    while (!br.done()) {
      const std::uint8_t tag = br.u8();
      workload::Op op;
      switch (static_cast<RecordTag>(tag)) {
        case RecordTag::kSetIpc:
          state.current_ipc = br.f64();
          state.ipc_known = true;
          ++records;
          continue;
        case RecordTag::kCompute: {
          const std::uint64_t count = br.varint();
          if (count == 0 || count > std::numeric_limits<std::uint32_t>::max()) {
            throw TraceError(TraceErrorKind::kBadRecord,
                             "compute count " + std::to_string(count) +
                                 " out of range");
          }
          if (!state.ipc_known) {
            throw TraceError(TraceErrorKind::kBadRecord,
                             "compute record before any kSetIpc");
          }
          op.kind = workload::OpKind::kCompute;
          op.count = static_cast<std::uint32_t>(count);
          op.addr = 0;
          op.ipc = state.current_ipc;
          out.instructions += count;
          break;
        }
        case RecordTag::kLoad:
        case RecordTag::kStore: {
          state.last_data_addr = static_cast<mem::Addr>(
              static_cast<std::int64_t>(state.last_data_addr) + br.svarint());
          op.kind = static_cast<RecordTag>(tag) == RecordTag::kLoad
                        ? workload::OpKind::kLoad
                        : workload::OpKind::kStore;
          op.count = 1;
          op.addr = state.last_data_addr;
          out.instructions += 1;
          break;
        }
        case RecordTag::kBarrier: {
          const std::uint64_t id = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(state.expected_barrier_id) +
              br.svarint());
          state.expected_barrier_id = id + 1;
          op.kind = workload::OpKind::kBarrier;
          op.count = 0;
          op.addr = id;
          break;
        }
        default:
          throw TraceError(TraceErrorKind::kBadRecord,
                           "unknown record tag " + std::to_string(tag));
      }
      out.ops.push_back(op);
      ++records;
    }
  }

  if (records != chunk.record_count) {
    throw TraceError(TraceErrorKind::kBadRecord,
                     "chunk declared " + std::to_string(chunk.record_count) +
                         " records but decoded " + std::to_string(records));
  }
}

TraceData load_trace(const std::string& path) {
  TraceReader reader(path);
  TraceData data;
  data.header = reader.header();
  data.threads.resize(data.header.thread_count);
  std::vector<DecodeState> states(data.header.thread_count);
  for (const Chunk& chunk : reader) {
    decode_chunk(chunk, states[chunk.thread], data.threads[chunk.thread]);
  }
  return data;
}

}  // namespace respin::trace
