#include "trace/capture.hpp"

#include "util/require.hpp"

namespace respin::trace {

workload::OpSourceFactory recording_factory(workload::OpSourceFactory inner,
                                            TraceWriter* writer) {
  RESPIN_REQUIRE(writer != nullptr, "recording_factory needs a writer");
  return [inner = std::move(inner), writer](std::uint32_t thread_id,
                                            std::uint32_t thread_count) {
    return workload::OpStream(std::make_unique<RecordingOpSource>(
        inner(thread_id, thread_count), writer, thread_id));
  };
}

RecordStats record_benchmark(const workload::WorkloadSpec& spec,
                             std::uint32_t threads, double scale,
                             std::uint64_t seed, const std::string& path) {
  RESPIN_REQUIRE(threads >= 1, "need at least one thread");
  TraceHeader header;
  header.thread_count = threads;
  header.seed = seed;
  header.scale = scale;
  header.benchmark = spec.name;
  TraceWriter writer(path, header);

  RecordStats stats;
  for (std::uint32_t t = 0; t < threads; ++t) {
    RecordingOpSource source(
        workload::OpStream(std::make_unique<workload::SyntheticOpSource>(
            workload::ThreadWorkload(spec, t, threads, scale, seed))),
        &writer, t);

    std::uint64_t instructions = 0;
    for (;;) {
      const workload::Op op = source.next();
      if (op.kind == workload::OpKind::kFinished) break;
      instructions += op.count;
      ++stats.ops;
    }
    stats.instructions += instructions;

    // Ifetch budget: one fetch per kMinInstructionsPerFetch committed
    // instructions, plus slack for the partial fetch groups around
    // scheduling boundaries.
    const std::uint64_t budget =
        instructions / kMinInstructionsPerFetch + 16;
    for (std::uint64_t i = 0; i < budget; ++i) {
      source.next_ifetch_addr();
    }
    stats.ifetches += budget;
  }

  writer.finish();
  return stats;
}

}  // namespace respin::trace
