#include "trace/replay.hpp"

#include <sstream>

#include "core/oracle.hpp"
#include "trace/capture.hpp"

namespace respin::trace {

TraceOpSource::TraceOpSource(std::shared_ptr<const TraceData> data,
                             std::uint32_t thread)
    : data_(std::move(data)), thread_(thread) {
  if (data_ == nullptr || thread_ >= data_->threads.size()) {
    throw TraceError(TraceErrorKind::kMismatch,
                     "trace has no thread " + std::to_string(thread));
  }
}

workload::Op TraceOpSource::next() {
  const ThreadTrace& t = data_->threads[thread_];
  if (op_pos_ >= t.ops.size()) return workload::Op{};  // kFinished forever.
  return t.ops[op_pos_++];
}

mem::Addr TraceOpSource::next_ifetch_addr() {
  const ThreadTrace& t = data_->threads[thread_];
  if (ifetch_pos_ >= t.ifetch.size()) {
    throw TraceError(
        TraceErrorKind::kMismatch,
        "ifetch stream exhausted on thread " + std::to_string(thread_) +
            " after " + std::to_string(t.ifetch.size()) +
            " fetches — the core configuration fetches more often than the "
            "recorded budget (instructions_per_fetch < " +
            std::to_string(kMinInstructionsPerFetch) + "?)");
  }
  return t.ifetch[ifetch_pos_++];
}

workload::OpSourceFactory trace_factory(
    std::shared_ptr<const TraceData> data) {
  if (data == nullptr) {
    throw TraceError(TraceErrorKind::kMismatch, "null trace data");
  }
  return [data](std::uint32_t thread_id, std::uint32_t thread_count) {
    if (thread_count != data->header.thread_count) {
      throw TraceError(TraceErrorKind::kMismatch,
                       "trace recorded " +
                           std::to_string(data->header.thread_count) +
                           " threads, configuration wants " +
                           std::to_string(thread_count));
    }
    return workload::OpStream(
        std::make_unique<TraceOpSource>(data, thread_id));
  };
}

core::SimResult replay_trace(core::ConfigId id, const TraceData& data,
                             const ReplayOptions& options) {
  const core::ClusterConfig config = core::make_cluster_config(
      id, options.size, data.header.thread_count, data.header.seed);
  core::SimParams params;
  params.workload_scale = data.header.scale;
  params.seed = data.header.seed;
  params.cycle_skip = options.cycle_skip;

  auto shared = std::make_shared<const TraceData>(data);
  core::ClusterSim sim(config, data.header.benchmark, trace_factory(shared),
                       params);
  if (config.governor == core::GovernorKind::kOracle) {
    return core::run_with_oracle(
        sim, core::OracleParams{.stride = options.oracle_stride});
  }
  sim.run();
  return sim.result();
}

core::SimResult live_run_for(core::ConfigId id, const TraceData& data,
                             const ReplayOptions& options) {
  core::RunOptions run;
  run.size = options.size;
  run.cluster_cores = data.header.thread_count;
  run.workload_scale = data.header.scale;
  run.seed = data.header.seed;
  run.oracle_stride = options.oracle_stride;
  run.cycle_skip = options.cycle_skip;
  return core::run_experiment(id, data.header.benchmark, run);
}

namespace {

class ResultDiffer {
 public:
  template <typename T>
  void field(const char* name, const T& a, const T& b) {
    if (a != b) {
      os_ << "  " << name << ": " << a << " != " << b << "\n";
      ++count_;
    }
  }

  void histogram(const char* name, const util::Histogram& a,
                 const util::Histogram& b) {
    field((std::string(name) + ".buckets").c_str(), a.bucket_count(),
          b.bucket_count());
    if (a.bucket_count() != b.bucket_count()) return;
    field((std::string(name) + ".total").c_str(), a.total(), b.total());
    for (std::size_t i = 0; i < a.bucket_count(); ++i) {
      field((std::string(name) + ".bucket" + std::to_string(i)).c_str(),
            a.bucket(i), b.bucket(i));
    }
  }

  std::string str() const { return count_ == 0 ? "" : os_.str(); }

 private:
  std::ostringstream os_;
  std::size_t count_ = 0;
};

}  // namespace

std::string diff_results(const core::SimResult& a, const core::SimResult& b) {
  ResultDiffer d;
  d.field("config_name", a.config_name, b.config_name);
  d.field("benchmark", a.benchmark, b.benchmark);
  d.field("cycles", a.cycles, b.cycles);
  d.field("seconds", a.seconds, b.seconds);  // Bit-identical, not approx.
  d.field("instructions", a.instructions, b.instructions);
  d.field("hit_cycle_limit", a.hit_cycle_limit, b.hit_cycle_limit);

  d.field("counts.instructions", a.counts.instructions,
          b.counts.instructions);
  d.field("counts.core_busy_cycles", a.counts.core_busy_cycles,
          b.counts.core_busy_cycles);
  d.field("counts.core_idle_cycles", a.counts.core_idle_cycles,
          b.counts.core_idle_cycles);
  d.field("counts.l1_reads", a.counts.l1_reads, b.counts.l1_reads);
  d.field("counts.l1_writes", a.counts.l1_writes, b.counts.l1_writes);
  d.field("counts.l2_reads", a.counts.l2_reads, b.counts.l2_reads);
  d.field("counts.l2_writes", a.counts.l2_writes, b.counts.l2_writes);
  d.field("counts.l3_reads", a.counts.l3_reads, b.counts.l3_reads);
  d.field("counts.l3_writes", a.counts.l3_writes, b.counts.l3_writes);
  d.field("counts.dram_accesses", a.counts.dram_accesses,
          b.counts.dram_accesses);
  d.field("counts.coherence_messages", a.counts.coherence_messages,
          b.counts.coherence_messages);
  d.field("counts.level_shifter_crossings",
          a.counts.level_shifter_crossings,
          b.counts.level_shifter_crossings);
  d.field("counts.core_on_ps", a.counts.core_on_ps, b.counts.core_on_ps);

  d.field("energy.core_dynamic", a.energy.core_dynamic,
          b.energy.core_dynamic);
  d.field("energy.core_leakage", a.energy.core_leakage,
          b.energy.core_leakage);
  d.field("energy.cache_dynamic", a.energy.cache_dynamic,
          b.energy.cache_dynamic);
  d.field("energy.cache_leakage", a.energy.cache_leakage,
          b.energy.cache_leakage);
  d.field("energy.dram", a.energy.dram, b.energy.dram);
  d.field("energy.network", a.energy.network, b.energy.network);

  d.histogram("read_hit_latency", a.read_hit_latency, b.read_hit_latency);
  d.field("dl1_read_hits", a.dl1_read_hits, b.dl1_read_hits);
  d.field("dl1_read_misses", a.dl1_read_misses, b.dl1_read_misses);
  d.field("dl1_half_misses", a.dl1_half_misses, b.dl1_half_misses);
  d.field("dl1_store_rejections", a.dl1_store_rejections,
          b.dl1_store_rejections);
  d.histogram("dl1_arrivals", a.dl1_arrivals, b.dl1_arrivals);
  d.field("dl1_cycles", a.dl1_cycles, b.dl1_cycles);

  d.field("trace.size", a.trace.size(), b.trace.size());
  if (a.trace.size() == b.trace.size()) {
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
      const std::string prefix = "trace[" + std::to_string(i) + "].";
      d.field((prefix + "cycle").c_str(), a.trace[i].cycle, b.trace[i].cycle);
      d.field((prefix + "active_cores").c_str(), a.trace[i].active_cores,
              b.trace[i].active_cores);
      d.field((prefix + "epi_pj").c_str(), a.trace[i].epi_pj,
              b.trace[i].epi_pj);
    }
  }
  d.field("avg_active_cores", a.avg_active_cores, b.avg_active_cores);
  d.field("min_active_cores", a.min_active_cores, b.min_active_cores);
  d.field("max_active_cores", a.max_active_cores, b.max_active_cores);
  return d.str();
}

}  // namespace respin::trace
