#include "trace/writer.hpp"

namespace respin::trace {

namespace {
/// Flush a per-thread buffer once it reaches this many payload bytes.
constexpr std::size_t kChunkTarget = 64 * 1024;
}  // namespace

TraceWriter::TraceWriter(const std::string& path, const TraceHeader& header)
    : os_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      header_(header),
      threads_(header.thread_count) {
  const std::vector<std::uint8_t> bytes = encode_header(header_);
  if (!os_) {
    throw TraceError(TraceErrorKind::kIo, "cannot open " + path);
  }
  os_.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (const TraceError&) {
    // Destructor close is best effort; finish() surfaces failures.
  }
}

TraceWriter::ThreadState& TraceWriter::state_for(std::uint32_t thread) {
  if (thread >= threads_.size()) {
    throw TraceError(TraceErrorKind::kBadRecord,
                     "thread " + std::to_string(thread) + " out of range");
  }
  if (finished_) {
    throw TraceError(TraceErrorKind::kIo, "writer already finished");
  }
  return threads_[thread];
}

void TraceWriter::add_op(std::uint32_t thread, const workload::Op& op) {
  ThreadState& t = state_for(thread);
  switch (op.kind) {
    case workload::OpKind::kCompute:
      if (!t.ipc_known || t.current_ipc != op.ipc) {
        put_u8(t.ops, static_cast<std::uint8_t>(RecordTag::kSetIpc));
        put_f64(t.ops, op.ipc);
        t.current_ipc = op.ipc;
        t.ipc_known = true;
        ++t.op_records;
      }
      put_u8(t.ops, static_cast<std::uint8_t>(RecordTag::kCompute));
      put_varint(t.ops, op.count);
      break;
    case workload::OpKind::kLoad:
    case workload::OpKind::kStore:
      put_u8(t.ops, static_cast<std::uint8_t>(
                        op.kind == workload::OpKind::kLoad ? RecordTag::kLoad
                                                           : RecordTag::kStore));
      put_svarint(t.ops, static_cast<std::int64_t>(op.addr) -
                             static_cast<std::int64_t>(t.last_data_addr));
      t.last_data_addr = op.addr;
      break;
    case workload::OpKind::kBarrier:
      put_u8(t.ops, static_cast<std::uint8_t>(RecordTag::kBarrier));
      put_svarint(t.ops, static_cast<std::int64_t>(op.addr) -
                             static_cast<std::int64_t>(t.expected_barrier_id));
      t.expected_barrier_id = op.addr + 1;
      break;
    case workload::OpKind::kFinished:
      return;  // Implicit: end of the ops stream.
  }
  ++t.op_records;
  ++ops_recorded_;
  maybe_flush(thread, StreamKind::kOps);
}

void TraceWriter::add_ifetch(std::uint32_t thread, mem::Addr addr) {
  ThreadState& t = state_for(thread);
  put_svarint(t.ifetch, static_cast<std::int64_t>(addr) -
                            static_cast<std::int64_t>(t.last_ifetch_addr));
  t.last_ifetch_addr = addr;
  ++t.ifetch_records;
  ++ifetches_recorded_;
  maybe_flush(thread, StreamKind::kIfetch);
}

void TraceWriter::maybe_flush(std::uint32_t thread, StreamKind kind) {
  const ThreadState& t = threads_[thread];
  const std::size_t size =
      kind == StreamKind::kOps ? t.ops.size() : t.ifetch.size();
  if (size >= kChunkTarget) flush_chunk(thread, kind);
}

void TraceWriter::flush_chunk(std::uint32_t thread, StreamKind kind) {
  ThreadState& t = threads_[thread];
  std::vector<std::uint8_t>& payload =
      kind == StreamKind::kOps ? t.ops : t.ifetch;
  std::uint32_t& records =
      kind == StreamKind::kOps ? t.op_records : t.ifetch_records;
  if (payload.empty()) return;

  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 17);
  put_u32(frame, thread);
  put_u8(frame, static_cast<std::uint8_t>(kind));
  put_u32(frame, records);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, crc32(payload));
  os_.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));

  payload.clear();
  records = 0;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::uint32_t thread = 0; thread < threads_.size(); ++thread) {
    flush_chunk(thread, StreamKind::kOps);
    flush_chunk(thread, StreamKind::kIfetch);
  }
  std::vector<std::uint8_t> marker;
  put_u32(marker, kEndMarker);
  os_.write(reinterpret_cast<const char*>(marker.data()),
            static_cast<std::streamsize>(marker.size()));
  os_.flush();
  if (!os_) {
    throw TraceError(TraceErrorKind::kIo, "write failed for " + path_);
  }
  os_.close();
}

}  // namespace respin::trace
