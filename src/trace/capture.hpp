// Trace capture: a transparent recording hook over any op source, plus
// the standalone benchmark recorder behind `respin_trace record`.
//
// The synthetic generator is a pure function of (benchmark, thread_id,
// thread_count, scale, seed) and independent of the architecture
// configuration, so record_benchmark drains each thread's stream directly
// — no simulator in the loop — and the resulting trace replays
// bit-identically through EVERY Table IV configuration (the simulator
// consumes each thread's ops strictly in order; only the timing differs).
//
// Instruction-fetch addresses come from their own generator stream. How
// many the simulator requests depends on the core's fetch-group size
// (instructions_per_fetch), so the recorder captures the stream to a
// budget that covers any fetch group of kMinInstructionsPerFetch or more;
// replay raises TraceError(kMismatch) if a configuration ever outruns it.
#pragma once

#include <cstdint>
#include <string>

#include "trace/writer.hpp"
#include "workload/op_source.hpp"

namespace respin::trace {

/// Smallest fetch group the recorded ifetch budget covers (the paper's
/// cores fetch every 8 instructions; 4 leaves 2x headroom).
inline constexpr std::uint32_t kMinInstructionsPerFetch = 4;

/// Transparent tee: forwards an inner stream while recording everything
/// it emits. clone() intentionally drops the recording side — ClusterSim
/// snapshots (oracle trial epochs) would otherwise re-record every op
/// they consume and corrupt the trace; only the primary stream records.
class RecordingOpSource final : public workload::OpSource {
 public:
  RecordingOpSource(workload::OpStream inner, TraceWriter* writer,
                    std::uint32_t thread)
      : inner_(std::move(inner)), writer_(writer), thread_(thread) {}

  workload::Op next() override {
    const workload::Op op = inner_.next();
    writer_->add_op(thread_, op);
    return op;
  }

  mem::Addr next_ifetch_addr() override {
    const mem::Addr addr = inner_.next_ifetch_addr();
    writer_->add_ifetch(thread_, addr);
    return addr;
  }

  std::unique_ptr<workload::OpSource> clone() const override {
    return inner_.source()->clone();
  }

 private:
  workload::OpStream inner_;
  TraceWriter* writer_;  ///< Non-owning; must outlive the source.
  std::uint32_t thread_;
};

/// Wraps `inner` so every stream it builds records into `writer`.
workload::OpSourceFactory recording_factory(workload::OpSourceFactory inner,
                                            TraceWriter* writer);

struct RecordStats {
  std::uint64_t ops = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t instructions = 0;
};

/// Records benchmark (spec, threads, scale, seed) to a trace file at
/// `path` by draining every thread's synthetic stream to exhaustion
/// through a RecordingOpSource. Throws TraceError on I/O failure.
RecordStats record_benchmark(const workload::WorkloadSpec& spec,
                             std::uint32_t threads, double scale,
                             std::uint64_t seed, const std::string& path);

}  // namespace respin::trace
