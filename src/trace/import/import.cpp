#include "trace/import/import.hpp"

#include "trace/capture.hpp"
#include "trace/import/hybridsim.hpp"
#include "workload/workload.hpp"

namespace respin::trace {

const char* to_string(ImportErrorKind kind) {
  switch (kind) {
    case ImportErrorKind::kIo:
      return "io error";
    case ImportErrorKind::kSyntax:
      return "syntax error";
    case ImportErrorKind::kBadCoreId:
      return "bad core id";
    case ImportErrorKind::kBadOrder:
      return "interleaving violation";
    case ImportErrorKind::kEmpty:
      return "empty trace";
    case ImportErrorKind::kUnknownFormat:
      return "unknown format";
    case ImportErrorKind::kLimit:
      return "conversion limit exceeded";
  }
  return "unknown import error";
}

const std::vector<const TraceImporter*>& importer_registry() {
  static const HybridSimImporter hybridsim;
  static const std::vector<const TraceImporter*> registry = {&hybridsim};
  return registry;
}

const TraceImporter& importer_for(const std::string& format) {
  for (const TraceImporter* importer : importer_registry()) {
    if (format == importer->format_name()) return *importer;
  }
  throw ImportError(ImportErrorKind::kUnknownFormat,
                    "no importer named '" + format +
                        "' (registered: " + importer_names() + ")");
}

std::string importer_names() {
  std::string names;
  for (const TraceImporter* importer : importer_registry()) {
    if (!names.empty()) names += ", ";
    names += importer->format_name();
  }
  return names;
}

std::uint32_t padded_thread_count(std::uint32_t cores_seen) {
  // make_cluster_config accepts 2/4/8/16/32 cores per cluster; pad up so
  // the imported trace replays through one cluster (the extra threads
  // carry empty streams and finish immediately).
  for (std::uint32_t cluster : {2u, 4u, 8u, 16u, 32u}) {
    if (cores_seen <= cluster) return cluster;
  }
  throw ImportError(ImportErrorKind::kLimit,
                    "trace uses " + std::to_string(cores_seen) +
                        " cores; replay supports at most 32 per cluster");
}

namespace {

/// Derives a benchmark label from the input path: basename without its
/// last extension, prefixed so imported workloads are recognizable in
/// result rows and request keys.
std::string derive_name(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  if (base.empty()) base = "trace";
  return "import:" + base;
}

}  // namespace

ImportStats import_trace(const std::string& format, const std::string& in_path,
                         const std::string& out_path,
                         const ImportOptions& options) {
  const TraceImporter& importer = importer_for(format);

  std::vector<ParsedThread> threads;
  ImportStats stats = importer.parse(in_path, options, threads);
  if (stats.mem_ops == 0) {
    throw ImportError(ImportErrorKind::kEmpty,
                      in_path + " holds no memory accesses");
  }
  // Pad on the highest core id + 1 (threads is indexed by core id), not
  // the distinct-core count — a sparse id space must not drop streams.
  stats.thread_count =
      padded_thread_count(static_cast<std::uint32_t>(threads.size()));
  threads.resize(stats.thread_count);

  TraceHeader header;
  header.thread_count = stats.thread_count;
  header.seed = options.seed;
  header.scale = 1.0;
  header.benchmark = options.name.empty() ? derive_name(in_path) : options.name;
  TraceWriter writer(out_path, header);

  // Imported streams carry no ifetch addresses, but the core model fetches
  // one per fetch group; synthesize the same budget the native recorder
  // uses (capture.hpp) as a deterministic sequential walk over a code
  // window — replay needs addresses, not a branch model.
  constexpr std::uint64_t kCodeBytes = 32 * 1024;
  const mem::Addr code_base = workload::ThreadWorkload::code_base();
  for (std::uint32_t t = 0; t < stats.thread_count; ++t) {
    const ParsedThread& thread = threads[t];
    for (const workload::Op& op : thread.ops) writer.add_op(t, op);
    const std::uint64_t budget =
        thread.instructions / kMinInstructionsPerFetch + 16;
    for (std::uint64_t i = 0; i < budget; ++i) {
      writer.add_ifetch(t, code_base + (64 * t + 32 * i) % kCodeBytes);
    }
    stats.ifetches += budget;
  }
  writer.finish();
  return stats;
}

}  // namespace respin::trace
