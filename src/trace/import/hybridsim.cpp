#include "trace/import/hybridsim.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>

namespace respin::trace {

namespace {

/// Splits `line` into whitespace-separated tokens; '#' starts a comment.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict unsigned parse (decimal, or 0x-hex when `allow_hex`): the whole
/// token must be digits, no sign, no trailing junk — strtoull's "parse a
/// prefix" leniency would silently accept corrupt fields.
std::uint64_t parse_u64(std::string_view token, bool allow_hex,
                        const char* field, std::uint64_t line_no) {
  std::uint64_t base = 10;
  std::string_view digits = token;
  if (allow_hex && token.size() > 2 &&
      (token.substr(0, 2) == "0x" || token.substr(0, 2) == "0X")) {
    base = 16;
    digits = token.substr(2);
  }
  if (digits.empty()) {
    throw ImportError(ImportErrorKind::kSyntax,
                      std::string("empty ") + field + " field", line_no);
  }
  std::uint64_t value = 0;
  for (const char c : digits) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      throw ImportError(ImportErrorKind::kSyntax,
                        std::string("non-numeric ") + field + " field '" +
                            std::string(token) + "'",
                        line_no);
    }
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / base) {
      throw ImportError(ImportErrorKind::kSyntax,
                        std::string(field) + " field '" + std::string(token) +
                            "' overflows 64 bits",
                        line_no);
    }
    value = value * base + digit;
  }
  return value;
}

/// R/W field: accepts the single-letter and spelled-out forms, any case.
bool parse_is_store(std::string_view token, std::uint64_t line_no) {
  std::string upper;
  upper.reserve(token.size());
  for (const char c : token) {
    upper.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (upper == "R" || upper == "READ" || upper == "LOAD" || upper == "LD") {
    return false;
  }
  if (upper == "W" || upper == "WRITE" || upper == "STORE" || upper == "ST") {
    return true;
  }
  throw ImportError(ImportErrorKind::kSyntax,
                    "unknown access kind '" + std::string(token) +
                        "' (expected R or W)",
                    line_no);
}

}  // namespace

ImportStats HybridSimImporter::parse(const std::string& in_path,
                                     const ImportOptions& options,
                                     std::vector<ParsedThread>& threads) const {
  std::ifstream is(in_path);
  if (!is.is_open()) {
    throw ImportError(ImportErrorKind::kIo, "cannot open " + in_path);
  }

  ImportStats stats;
  threads.clear();
  // Per-core timestamp of the previous record (interleaving check + gap
  // synthesis); kNoTimestamp marks a core's first record.
  constexpr std::uint64_t kNoTimestamp =
      std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> last_timestamp;

  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.empty()) continue;  // Blank or comment line.
    if (tokens.size() != 4) {
      throw ImportError(ImportErrorKind::kSyntax,
                        "expected 4 fields <core> <timestamp> <address> "
                        "<R|W>, got " +
                            std::to_string(tokens.size()),
                        line_no);
    }
    const std::uint64_t core_raw =
        parse_u64(tokens[0], /*allow_hex=*/false, "core id", line_no);
    if (core_raw >= options.max_cores) {
      throw ImportError(ImportErrorKind::kBadCoreId,
                        "core id " + std::to_string(core_raw) +
                            " out of range (max_cores " +
                            std::to_string(options.max_cores) + ")",
                        line_no);
    }
    const auto core = static_cast<std::uint32_t>(core_raw);
    const std::uint64_t timestamp =
        parse_u64(tokens[1], /*allow_hex=*/false, "timestamp", line_no);
    const std::uint64_t address =
        parse_u64(tokens[2], /*allow_hex=*/true, "address", line_no);
    const bool store = parse_is_store(tokens[3], line_no);

    if (core >= threads.size()) {
      threads.resize(core + 1);
      last_timestamp.resize(core + 1, kNoTimestamp);
    }
    ParsedThread& thread = threads[core];
    if (thread.ops.empty()) ++stats.cores_seen;

    // Compute gap from the per-core timestamp delta. The first record of
    // a core starts the clock; later records must not go backwards.
    if (last_timestamp[core] != kNoTimestamp) {
      if (timestamp < last_timestamp[core]) {
        throw ImportError(ImportErrorKind::kBadOrder,
                          "core " + std::to_string(core) +
                              " timestamp went backwards (" +
                              std::to_string(timestamp) + " after " +
                              std::to_string(last_timestamp[core]) + ")",
                          line_no);
      }
      const std::uint64_t gap =
          std::min(timestamp - last_timestamp[core], options.max_compute_gap);
      if (gap > 0) {
        thread.ops.push_back(workload::Op{
            .kind = workload::OpKind::kCompute,
            .count = static_cast<std::uint32_t>(gap),
            .addr = 0,
            .ipc = 1.0});
        thread.instructions += gap;
        stats.instructions += gap;
      }
    }
    last_timestamp[core] = timestamp;

    thread.ops.push_back(workload::Op{
        .kind = store ? workload::OpKind::kStore : workload::OpKind::kLoad,
        .count = 1,
        .addr = address,
        .ipc = 1.0});
    thread.instructions += 1;
    stats.instructions += 1;
    ++stats.mem_ops;
  }
  if (is.bad()) {
    throw ImportError(ImportErrorKind::kIo, "read failure on " + in_path);
  }
  stats.lines = line_no;
  if (stats.mem_ops == 0) {
    throw ImportError(ImportErrorKind::kEmpty,
                      in_path + " holds no trace records");
  }
  return stats;
}

}  // namespace respin::trace
