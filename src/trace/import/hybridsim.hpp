// HybridSim-style multi-core CPU text traces.
//
// One memory access per line, whitespace-separated:
//
//   <core-id> <timestamp> <address> <R|W>
//
//   2 11504 140737488345376 R
//   0 11520 0x7ffff7a0d000 W
//
// core-id and timestamp are decimal; the address is decimal or 0x-hex.
// The access kind accepts R/W (any case) plus the READ/WRITE/LOAD/STORE
// spellings seen in published trace sets. '#'-comment and blank lines are
// skipped. Lines of one core must carry non-decreasing timestamps
// (records of different cores may interleave freely — HybridSim's
// trace players keep per-core cursors and so do we).
//
// Conversion: each record becomes a kLoad/kStore at its address, preceded
// by a compute run whose instruction count is the core's timestamp delta
// (clamped to ImportOptions::max_compute_gap) at issue IPC 1.0 — the
// timestamp stream is the only timing signal a foreign trace carries, so
// deltas stand in for the instructions between memory accesses. No
// barriers are synthesized: foreign cores run free and finish
// independently, which every governor handles.
#pragma once

#include "trace/import/import.hpp"

namespace respin::trace {

class HybridSimImporter final : public TraceImporter {
 public:
  const char* format_name() const override { return "hybridsim"; }
  const char* description() const override {
    return "multi-core text trace: <core> <timestamp> <address> <R|W> per "
           "line";
  }

  ImportStats parse(const std::string& in_path, const ImportOptions& options,
                    std::vector<ParsedThread>& threads) const override;
};

}  // namespace respin::trace
