// Foreign-trace ingestion framework: typed import errors, importer
// registry, and the conversion driver behind `respin_trace import`.
//
// An importer parses one foreign trace format (e.g. HybridSim's
// multi-core text traces) and re-emits the stream through the existing
// TraceWriter, so every imported workload lands in the native versioned,
// CRC-checked .rspt format and inherits the whole replay stack — the
// bit-identical replay contract, `respin_trace info/replay`, trace-backed
// serving requests, and the fit/synth pipeline — for free.
//
// Foreign files are untrusted input: every malformed-input path raises
// ImportError with a typed kind and a 1-based line number, never a crash
// or UB (tests/import_test.cpp runs these paths under ASan+UBSan).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/writer.hpp"

namespace respin::trace {

/// What went wrong while importing a foreign trace.
enum class ImportErrorKind : std::uint8_t {
  kIo,             ///< open/read failure on the foreign file.
  kSyntax,         ///< Truncated line or non-numeric field.
  kBadCoreId,      ///< Core id out of the supported range.
  kBadOrder,       ///< Interleaving violation (per-core time went backwards).
  kEmpty,          ///< No records (nothing to replay).
  kUnknownFormat,  ///< No importer registered under that name.
  kLimit,          ///< Input exceeds a conversion bound (cores, gap, ...).
};

const char* to_string(ImportErrorKind kind);

/// Typed import error: every validation failure in respin::trace::import
/// throws this. `line()` is 1-based; 0 means "not a per-line failure".
class ImportError : public std::runtime_error {
 public:
  ImportError(ImportErrorKind kind, const std::string& message,
              std::uint64_t line = 0)
      : std::runtime_error(std::string(to_string(kind)) +
                           (line != 0 ? " (line " + std::to_string(line) + ")"
                                      : std::string()) +
                           ": " + message),
        kind_(kind),
        line_(line) {}

  ImportErrorKind kind() const { return kind_; }
  std::uint64_t line() const { return line_; }

 private:
  ImportErrorKind kind_;
  std::uint64_t line_;
};

/// Conversion knobs shared by every importer.
struct ImportOptions {
  /// Benchmark label stored in the .rspt header (shows up in SimResult
  /// rows and canonical request keys). Empty derives one from the input
  /// file name.
  std::string name;
  /// Seed stored in the header. Replay reuses it for the die-variation
  /// map and controller arbitration, so two imports of the same file with
  /// the same seed replay bit-identically.
  std::uint64_t seed = 1;
  /// Largest accepted core id + 1. Replay runs a trace through one
  /// cluster, so this is capped at the largest cluster (32 cores).
  std::uint32_t max_cores = 32;
  /// Per-record cap on the compute gap synthesized from a timestamp
  /// delta; larger deltas clamp (foreign timestamps can carry DRAM-scale
  /// gaps that would dwarf the access stream).
  std::uint64_t max_compute_gap = 100'000;
};

/// What an importer produced.
struct ImportStats {
  std::uint32_t cores_seen = 0;     ///< Distinct core ids in the input.
  std::uint32_t thread_count = 0;   ///< Header value (padded to a cluster).
  std::uint64_t lines = 0;          ///< Input lines consumed.
  std::uint64_t mem_ops = 0;        ///< Loads + stores emitted.
  std::uint64_t instructions = 0;   ///< Including synthesized compute gaps.
  std::uint64_t ifetches = 0;       ///< Synthesized ifetch budget.
};

/// One core's converted op stream, before it is written out. Importers
/// produce these; the conversion driver owns header construction, ifetch
/// synthesis and the TraceWriter (thread count is only known after the
/// whole input has been parsed).
struct ParsedThread {
  std::vector<workload::Op> ops;
  std::uint64_t instructions = 0;  ///< Sum of op instruction counts.
};

/// One registered foreign-format reader.
class TraceImporter {
 public:
  virtual ~TraceImporter() = default;

  /// Registry key, e.g. "hybridsim".
  virtual const char* format_name() const = 0;
  /// One-line description for --list-formats and error messages.
  virtual const char* description() const = 0;

  /// Parses the foreign file into per-core op streams (indexed by core
  /// id; cores the input never mentions stay empty). Throws ImportError
  /// on any malformed input. Fills the input-side stats fields
  /// (cores_seen, lines, mem_ops, instructions).
  virtual ImportStats parse(const std::string& in_path,
                            const ImportOptions& options,
                            std::vector<ParsedThread>& threads) const = 0;
};

/// Every built-in importer, in registration order.
const std::vector<const TraceImporter*>& importer_registry();

/// Looks up an importer by format name; throws
/// ImportError(kUnknownFormat) listing the registered names.
const TraceImporter& importer_for(const std::string& format);

/// Comma-separated registered format names (error messages, CLI help).
std::string importer_names();

/// End-to-end conversion: parses `in_path` with the `format` importer and
/// writes a native .rspt trace to `out_path`. The header carries
/// `options.name` (or a name derived from `in_path`), `options.seed`, and
/// the padded thread count. Throws ImportError on malformed input and
/// TraceError on output I/O failure.
ImportStats import_trace(const std::string& format, const std::string& in_path,
                         const std::string& out_path,
                         const ImportOptions& options = {});

/// Rounds a core count up to a replayable cluster size (2/4/8/16/32 —
/// make_cluster_config's contract). Throws ImportError(kLimit) above 32.
std::uint32_t padded_thread_count(std::uint32_t cores_seen);

}  // namespace respin::trace
