// Buffered binary trace writer.
//
// Ops and ifetch addresses accumulate in per-thread delta/varint buffers
// and flush as CRC-protected chunks once they pass the chunk target size
// (or at finish()). Delta state (previous data address, expected barrier
// id, current IPC, previous ifetch address) is carried per thread across
// chunks, so chunk boundaries are invisible to the decoder.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "workload/workload.hpp"

namespace respin::trace {

class TraceWriter {
 public:
  /// Opens `path` and writes the header. Throws TraceError(kIo) on open
  /// failure, kBadHeader on out-of-range header fields.
  TraceWriter(const std::string& path, const TraceHeader& header);

  /// Flushes buffered chunks and closes the file (best effort, no throw);
  /// call finish() first when you need the failure surfaced.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one operation to `thread`'s ops stream. kFinished ops are
  /// ignored (end-of-stream is implicit in the format).
  void add_op(std::uint32_t thread, const workload::Op& op);

  /// Appends one instruction-fetch address to `thread`'s ifetch stream.
  void add_ifetch(std::uint32_t thread, mem::Addr addr);

  /// Flushes every buffer, writes the end marker and closes. Throws
  /// TraceError(kIo) if anything failed to reach the stream. Idempotent.
  void finish();

  const TraceHeader& header() const { return header_; }
  std::uint64_t ops_recorded() const { return ops_recorded_; }
  std::uint64_t ifetches_recorded() const { return ifetches_recorded_; }

 private:
  struct ThreadState {
    std::vector<std::uint8_t> ops;
    std::uint32_t op_records = 0;
    std::vector<std::uint8_t> ifetch;
    std::uint32_t ifetch_records = 0;
    // Delta-encoding state.
    mem::Addr last_data_addr = 0;
    std::uint64_t expected_barrier_id = 0;
    mem::Addr last_ifetch_addr = 0;
    double current_ipc = 0.0;
    bool ipc_known = false;
  };

  ThreadState& state_for(std::uint32_t thread);
  void maybe_flush(std::uint32_t thread, StreamKind kind);
  void flush_chunk(std::uint32_t thread, StreamKind kind);

  std::ofstream os_;
  std::string path_;
  TraceHeader header_;
  std::vector<ThreadState> threads_;
  std::uint64_t ops_recorded_ = 0;
  std::uint64_t ifetches_recorded_ = 0;
  bool finished_ = false;
};

}  // namespace respin::trace
