#include "trace/format.hpp"

#include <array>
#include <bit>

namespace respin::trace {

const char* to_string(TraceErrorKind kind) {
  switch (kind) {
    case TraceErrorKind::kIo: return "trace I/O error";
    case TraceErrorKind::kBadMagic: return "bad trace magic";
    case TraceErrorKind::kBadVersion: return "unsupported trace version";
    case TraceErrorKind::kBadHeader: return "malformed trace header";
    case TraceErrorKind::kTruncated: return "truncated trace";
    case TraceErrorKind::kCrcMismatch: return "trace CRC mismatch";
    case TraceErrorKind::kBadRecord: return "malformed trace record";
    case TraceErrorKind::kMismatch: return "trace/configuration mismatch";
  }
  return "trace error";
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag_encode(v));
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw TraceError(TraceErrorKind::kTruncated,
                     "need " + std::to_string(n) + " bytes, have " +
                         std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (std::uint16_t{data_[pos_++]}
                                        << (8 * i)));
  }
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int i = 0; i < 10; ++i) {
    const std::uint8_t byte = u8();
    // Bits past 64 must be zero (the 10th byte may carry only one bit).
    if (i == 9 && (byte & 0xFE) != 0) {
      throw TraceError(TraceErrorKind::kBadRecord, "varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) return v;
  }
  throw TraceError(TraceErrorKind::kBadRecord, "varint longer than 10 bytes");
}

std::string ByteReader::bytes(std::size_t n) {
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t c = 0xFFFF'FFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFF'FFFFu;
}

std::vector<std::uint8_t> encode_header(const TraceHeader& header) {
  if (header.thread_count == 0 || header.thread_count > kMaxThreads) {
    throw TraceError(TraceErrorKind::kBadHeader,
                     "thread count " + std::to_string(header.thread_count) +
                         " outside [1, " + std::to_string(kMaxThreads) + "]");
  }
  if (header.benchmark.size() > kMaxNameLen) {
    throw TraceError(TraceErrorKind::kBadHeader, "benchmark name too long");
  }
  if (!(header.scale > 0.0)) {
    throw TraceError(TraceErrorKind::kBadHeader, "scale must be positive");
  }
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u16(out, 0);  // Reserved.
  put_u32(out, header.thread_count);
  put_u64(out, header.seed);
  put_f64(out, header.scale);
  put_u16(out, static_cast<std::uint16_t>(header.benchmark.size()));
  out.insert(out.end(), header.benchmark.begin(), header.benchmark.end());
  put_u32(out, crc32(out));
  return out;
}

}  // namespace respin::trace
