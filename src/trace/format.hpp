// Binary trace format (.rspt): constants, typed errors, and the explicit
// little-endian encoding primitives shared by TraceWriter and TraceReader.
//
// Layout (all integers little-endian, encoded byte by byte — structs are
// never reinterpret_cast to disk, so a trace recorded on any toolchain
// replays on any other, like the golden-stats snapshots):
//
//   File    := Header Chunk* EndMarker
//   Header  := magic:u32 version:u16 reserved:u16 thread_count:u32
//              seed:u64 scale:f64bits name_len:u16 name:bytes crc:u32
//   Chunk   := thread:u32 stream:u8 record_count:u32 payload_len:u32
//              payload:bytes crc:u32            (crc covers payload only)
//   EndMarker := 0xFFFFFFFF:u32
//
// Per-thread payloads are delta/varint compressed:
//   ops stream     tagged records {kCompute count} {kLoad/kStore ±Δaddr}
//                  {kBarrier ±Δid} {kSetIpc f64bits}; kSetIpc pins the
//                  issue IPC of subsequent compute records.
//   ifetch stream  one zigzag-varint address delta per record.
//
// Every malformed-input path raises TraceError with a TraceErrorKind —
// truncation, bad magic/version, CRC mismatch, oversized or unknown
// records — never undefined behaviour. The reader treats the file as
// untrusted input (the ASan+UBSan CI job runs these paths).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "workload/workload.hpp"

namespace respin::trace {

inline constexpr std::uint32_t kMagic = 0x54505352u;  // "RSPT" on disk.
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::uint32_t kEndMarker = 0xFFFF'FFFFu;

/// Sanity bounds on untrusted header/chunk fields: generous for any real
/// trace, small enough that a corrupted length cannot drive allocation.
inline constexpr std::uint32_t kMaxThreads = 4096;
inline constexpr std::uint32_t kMaxNameLen = 4096;
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 24;  // 16 MiB.

// The encoders below assume these shapes; a toolchain where they fail
// needs new encoding code, not silently different traces.
static_assert(sizeof(mem::Addr) == 8, "trace format encodes 64-bit addresses");
static_assert(std::is_same_v<std::underlying_type_t<workload::OpKind>,
                             std::uint8_t>,
              "OpKind must stay a byte-sized enum");
static_assert(sizeof(double) == 8 && std::numeric_limits<double>::is_iec559,
              "trace format stores IPC as IEEE-754 binary64 bits");
static_assert(sizeof(workload::Op) ==
                  sizeof(workload::OpKind) + 3 /*padding*/ +
                      sizeof(std::uint32_t) + sizeof(mem::Addr) +
                      sizeof(double),
              "Op gained a field — extend the trace record encoding");

/// What went wrong while parsing or replaying a trace.
enum class TraceErrorKind : std::uint8_t {
  kIo,           ///< open/read/write failure.
  kBadMagic,     ///< Not a respin trace.
  kBadVersion,   ///< Unsupported format version.
  kBadHeader,    ///< Header field out of bounds (e.g. zero threads).
  kTruncated,    ///< EOF before the structure completed.
  kCrcMismatch,  ///< Header or chunk checksum failed.
  kBadRecord,    ///< Undecodable payload (unknown tag, varint overrun...).
  kMismatch,     ///< Trace/configuration disagreement at replay time.
};

const char* to_string(TraceErrorKind kind);

/// Typed trace error: every validation failure in respin::trace throws
/// this (tests and the CLI branch on kind()).
class TraceError : public std::runtime_error {
 public:
  TraceError(TraceErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  TraceErrorKind kind() const { return kind_; }

 private:
  TraceErrorKind kind_;
};

/// Record tags of the per-thread ops stream.
enum class RecordTag : std::uint8_t {
  kCompute = 0,
  kLoad = 1,
  kStore = 2,
  kBarrier = 3,
  kSetIpc = 4,
};

/// Which per-thread stream a chunk carries.
enum class StreamKind : std::uint8_t { kOps = 0, kIfetch = 1 };

/// Trace-wide metadata. `scale`/`seed` reproduce the recorded generator
/// instance; replay reuses `seed` for the simulator's arbitration streams
/// and the die-variation map so replayed runs are bit-identical to live
/// ones.
struct TraceHeader {
  std::uint32_t thread_count = 0;
  std::uint64_t seed = 0;
  double scale = 1.0;
  std::string benchmark;
};

// ---- Little-endian primitives (append to a byte buffer) ------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);

/// LEB128 unsigned varint (1-10 bytes).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Zigzag-mapped signed varint.
void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v);

constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Bounds-checked cursor over a byte span; every read throws
/// TraceError(kTruncated/kBadRecord) instead of running past the end.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t varint();
  std::int64_t svarint() { return zigzag_decode(varint()); }
  std::string bytes(std::size_t n);

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// IEEE CRC32 (the zlib/PNG polynomial), no external dependency.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Serializes a header (magic through CRC) after validating its fields.
std::vector<std::uint8_t> encode_header(const TraceHeader& header);

}  // namespace respin::trace
