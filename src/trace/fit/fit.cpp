#include "trace/fit/fit.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/oracle.hpp"
#include "trace/capture.hpp"
#include "trace/writer.hpp"
#include "util/require.hpp"

namespace respin::trace::fit {

namespace obsj = obs::json;
using workload::kColdDistance;
using workload::kReuseBuckets;
using workload::ProfilePhase;
using workload::WorkloadProfile;

namespace {

/// Fenwick tree over memory-access indices, for the exact stack-distance
/// algorithm: a set bit at position i means "the line last accessed at i
/// has not been touched since", so a prefix-sum difference counts the
/// distinct lines accessed between two positions.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, std::int32_t delta) {
    for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }

  std::int64_t prefix(std::size_t i) const {
    std::int64_t sum = 0;
    for (; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

 private:
  std::vector<std::int32_t> tree_;
};

constexpr std::uint32_t kSharedOwner = 0xFFFF'FFFFu;
constexpr mem::Addr kLineShift = 6;  // 64-byte lines.

/// Per-window accumulator, summed across threads.
struct WindowAccum {
  std::uint64_t instructions = 0;
  std::uint64_t mem_ops = 0;
  std::uint64_t stores = 0;
  std::uint64_t shared = 0;
  double ipc_weight = 0.0;             ///< sum(count * ipc) over compute.
  std::uint64_t compute_instr = 0;
};

double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

WorkloadProfile fit_trace(const TraceData& data, const FitOptions& options) {
  RESPIN_REQUIRE(options.windows >= 1, "fit needs at least one window");

  // Pass 1: classify every line as thread-private or shared (touched by
  // two or more threads) — the sharing fraction needs the final verdict
  // before accesses are counted.
  std::unordered_map<mem::Addr, std::uint32_t> line_owner;
  for (std::uint32_t t = 0; t < data.threads.size(); ++t) {
    for (const workload::Op& op : data.threads[t].ops) {
      if (op.kind != workload::OpKind::kLoad &&
          op.kind != workload::OpKind::kStore) {
        continue;
      }
      const mem::Addr line = op.addr >> kLineShift;
      auto [it, inserted] = line_owner.emplace(line, t);
      if (!inserted && it->second != t) it->second = kSharedOwner;
    }
  }
  std::uint64_t shared_lines = 0;
  for (const auto& [line, owner] : line_owner) {
    if (owner == kSharedOwner) ++shared_lines;
  }

  // Pass 2: per-thread mix, exact reuse distances, windowed phases.
  WorkloadProfile profile;
  profile.name = data.header.benchmark.empty() ? "profile"
                                               : data.header.benchmark;
  profile.thread_count = data.header.thread_count;
  profile.shared_pool_lines = shared_lines;
  profile.reuse_hist.assign(kReuseBuckets, 0);

  std::vector<WindowAccum> windows(options.windows);
  std::uint64_t total_instructions = 0;
  std::uint64_t total_shared_accesses = 0;
  std::uint64_t total_barriers = 0;
  double total_ipc_weight = 0.0;
  std::uint64_t total_compute_instr = 0;
  std::uint32_t active_threads = 0;

  for (const ThreadTrace& thread : data.threads) {
    if (thread.ops.empty()) continue;
    ++active_threads;

    std::uint64_t thread_instructions = 0;
    std::uint64_t mem_count = 0;
    for (const workload::Op& op : thread.ops) {
      thread_instructions += op.count;
      if (op.kind == workload::OpKind::kLoad ||
          op.kind == workload::OpKind::kStore) {
        ++mem_count;
      }
    }
    if (thread_instructions == 0) continue;

    Fenwick fenwick(mem_count);
    std::unordered_map<mem::Addr, std::size_t> last_access;
    last_access.reserve(line_owner.size() / data.threads.size() + 16);

    std::uint64_t instr_cursor = 0;
    std::size_t access_index = 0;
    for (const workload::Op& op : thread.ops) {
      const std::size_t window = static_cast<std::size_t>(
          std::min<std::uint64_t>(options.windows - 1,
                                  instr_cursor * options.windows /
                                      thread_instructions));
      WindowAccum& w = windows[window];
      instr_cursor += op.count;
      w.instructions += op.count;

      switch (op.kind) {
        case workload::OpKind::kCompute:
          w.ipc_weight += static_cast<double>(op.count) * op.ipc;
          w.compute_instr += op.count;
          total_ipc_weight += static_cast<double>(op.count) * op.ipc;
          total_compute_instr += op.count;
          break;
        case workload::OpKind::kBarrier:
          ++total_barriers;
          break;
        case workload::OpKind::kLoad:
        case workload::OpKind::kStore: {
          ++w.mem_ops;
          ++profile.mem_ops;
          if (op.kind == workload::OpKind::kStore) {
            ++w.stores;
            ++profile.stores;
          } else {
            ++profile.loads;
          }
          const mem::Addr line = op.addr >> kLineShift;
          if (line_owner[line] == kSharedOwner) {
            ++w.shared;
            ++total_shared_accesses;
          }
          // Exact LRU stack distance: distinct lines touched strictly
          // between this access and the line's previous one.
          ++access_index;
          std::uint64_t distance = kColdDistance;
          const auto it = last_access.find(line);
          if (it != last_access.end()) {
            distance = static_cast<std::uint64_t>(
                fenwick.prefix(access_index - 1) - fenwick.prefix(it->second));
            fenwick.add(it->second, -1);
          }
          fenwick.add(access_index, +1);
          last_access[line] = access_index;
          ++profile.reuse_hist[workload::reuse_bucket(distance)];
          break;
        }
        case workload::OpKind::kFinished:
          break;
      }
    }
    total_instructions += thread_instructions;
  }

  if (profile.mem_ops == 0) {
    throw TraceError(TraceErrorKind::kMismatch,
                     "trace holds no memory accesses; nothing to fit");
  }
  RESPIN_REQUIRE(active_threads > 0, "trace has no active threads");

  profile.instructions = total_instructions / active_threads;
  profile.barriers = total_barriers / active_threads;
  profile.mem_fraction =
      static_cast<double>(profile.mem_ops) /
      static_cast<double>(total_instructions);
  profile.store_fraction = static_cast<double>(profile.stores) /
                           static_cast<double>(profile.mem_ops);
  profile.shared_fraction = static_cast<double>(total_shared_accesses) /
                            static_cast<double>(profile.mem_ops);
  profile.avg_ipc =
      total_compute_instr > 0
          ? clamp(total_ipc_weight / static_cast<double>(total_compute_instr),
                  0.05, 2.0)
          : 1.0;

  for (const WindowAccum& w : windows) {
    if (w.instructions == 0) continue;  // Short streams fill fewer windows.
    ProfilePhase phase;
    phase.instructions = std::max<std::uint64_t>(1u, w.instructions /
                                                         active_threads);
    phase.mem_fraction =
        clamp(static_cast<double>(w.mem_ops) /
                  static_cast<double>(w.instructions),
              0.0, 1.0);
    phase.store_fraction =
        w.mem_ops > 0 ? static_cast<double>(w.stores) /
                            static_cast<double>(w.mem_ops)
                      : 0.0;
    phase.shared_fraction =
        w.mem_ops > 0 ? static_cast<double>(w.shared) /
                            static_cast<double>(w.mem_ops)
                      : 0.0;
    phase.ipc = w.compute_instr > 0
                    ? clamp(w.ipc_weight /
                                static_cast<double>(w.compute_instr),
                            0.05, 2.0)
                    : profile.avg_ipc;
    profile.phases.push_back(phase);
  }
  RESPIN_REQUIRE(!profile.phases.empty(), "fit produced no phases");
  return profile;
}

// ---- JSON serde ----------------------------------------------------------

obsj::Value profile_to_json(const WorkloadProfile& profile) {
  // Field order is fixed (append-only) so the dumped form is byte-stable
  // and usable inside canonical request keys.
  obsj::Value v = obsj::Value::object();
  v.set("v", obsj::Value::number(std::uint64_t{1}));
  v.set("name", obsj::Value::str(profile.name));
  v.set("thread_count", obsj::Value::number(profile.thread_count));
  v.set("shared_pool_lines", obsj::Value::number(profile.shared_pool_lines));
  v.set("instructions", obsj::Value::number(profile.instructions));
  v.set("mem_ops", obsj::Value::number(profile.mem_ops));
  v.set("loads", obsj::Value::number(profile.loads));
  v.set("stores", obsj::Value::number(profile.stores));
  v.set("barriers", obsj::Value::number(profile.barriers));
  v.set("mem_fraction", obsj::Value::number(profile.mem_fraction));
  v.set("store_fraction", obsj::Value::number(profile.store_fraction));
  v.set("shared_fraction", obsj::Value::number(profile.shared_fraction));
  v.set("avg_ipc", obsj::Value::number(profile.avg_ipc));
  obsj::Array hist;
  hist.reserve(profile.reuse_hist.size());
  for (const std::uint64_t bucket : profile.reuse_hist) {
    hist.push_back(obsj::Value::number(bucket));
  }
  v.set("reuse_hist", obsj::Value::array(std::move(hist)));
  obsj::Array phases;
  phases.reserve(profile.phases.size());
  for (const ProfilePhase& p : profile.phases) {
    obsj::Value phase = obsj::Value::object();
    phase.set("instructions", obsj::Value::number(p.instructions));
    phase.set("ipc", obsj::Value::number(p.ipc));
    phase.set("mem_fraction", obsj::Value::number(p.mem_fraction));
    phase.set("store_fraction", obsj::Value::number(p.store_fraction));
    phase.set("shared_fraction", obsj::Value::number(p.shared_fraction));
    phases.push_back(std::move(phase));
  }
  v.set("phases", obsj::Value::array(std::move(phases)));
  return v;
}

namespace {

const obsj::Value& require_field(const obsj::Value& object, const char* key) {
  const obsj::Value* v = object.find(key);
  if (v == nullptr) {
    throw obsj::Error(std::string("profile is missing field '") + key + "'",
                      0);
  }
  return *v;
}

}  // namespace

WorkloadProfile profile_from_json(const obsj::Value& value) {
  const std::uint64_t version = require_field(value, "v").as_u64();
  if (version != 1) {
    throw obsj::Error("unsupported profile version " +
                          std::to_string(version),
                      0);
  }
  WorkloadProfile profile;
  profile.name = require_field(value, "name").as_string();
  profile.thread_count = static_cast<std::uint32_t>(
      require_field(value, "thread_count").as_u64());
  profile.shared_pool_lines =
      require_field(value, "shared_pool_lines").as_u64();
  profile.instructions = require_field(value, "instructions").as_u64();
  profile.mem_ops = require_field(value, "mem_ops").as_u64();
  profile.loads = require_field(value, "loads").as_u64();
  profile.stores = require_field(value, "stores").as_u64();
  profile.barriers = require_field(value, "barriers").as_u64();
  profile.mem_fraction = require_field(value, "mem_fraction").as_double();
  profile.store_fraction = require_field(value, "store_fraction").as_double();
  profile.shared_fraction =
      require_field(value, "shared_fraction").as_double();
  profile.avg_ipc = require_field(value, "avg_ipc").as_double();
  profile.reuse_hist.clear();
  for (const obsj::Value& bucket :
       require_field(value, "reuse_hist").as_array()) {
    profile.reuse_hist.push_back(bucket.as_u64());
  }
  profile.phases.clear();
  for (const obsj::Value& entry : require_field(value, "phases").as_array()) {
    ProfilePhase phase;
    phase.instructions = require_field(entry, "instructions").as_u64();
    phase.ipc = require_field(entry, "ipc").as_double();
    phase.mem_fraction = require_field(entry, "mem_fraction").as_double();
    phase.store_fraction = require_field(entry, "store_fraction").as_double();
    phase.shared_fraction =
        require_field(entry, "shared_fraction").as_double();
    profile.phases.push_back(phase);
  }
  workload::validate(profile);
  return profile;
}

void save_profile(const WorkloadProfile& profile, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) {
    throw TraceError(TraceErrorKind::kIo,
                     "cannot open " + path + " for writing");
  }
  os << profile_to_json(profile).dump() << "\n";
  if (!os.good()) {
    throw TraceError(TraceErrorKind::kIo, "write failure on " + path);
  }
}

WorkloadProfile load_profile(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    throw TraceError(TraceErrorKind::kIo, "cannot open " + path);
  }
  std::ostringstream text;
  text << is.rdbuf();
  if (is.bad()) {
    throw TraceError(TraceErrorKind::kIo, "read failure on " + path);
  }
  return profile_from_json(obsj::parse(text.str()));
}

// ---- Synthesis drivers ---------------------------------------------------

SynthStats synthesize_trace(const WorkloadProfile& profile,
                            std::uint32_t thread_count, double scale,
                            std::uint64_t seed, const std::string& path) {
  workload::validate(profile);
  RESPIN_REQUIRE(thread_count >= 1, "need at least one thread");
  auto shared = std::make_shared<const WorkloadProfile>(profile);

  TraceHeader header;
  header.thread_count = thread_count;
  header.seed = seed;
  header.scale = scale;
  header.benchmark = profile.name;
  TraceWriter writer(path, header);

  SynthStats stats;
  for (std::uint32_t t = 0; t < thread_count; ++t) {
    workload::SynthFromProfile source(shared, t, thread_count, scale, seed);
    for (;;) {
      const workload::Op op = source.next();
      if (op.kind == workload::OpKind::kFinished) break;
      writer.add_op(t, op);
      ++stats.ops;
    }
    stats.instructions += source.instructions_emitted();
    const std::uint64_t budget =
        source.instructions_emitted() / kMinInstructionsPerFetch + 16;
    for (std::uint64_t i = 0; i < budget; ++i) {
      writer.add_ifetch(t, source.next_ifetch_addr());
    }
    stats.ifetches += budget;
  }
  writer.finish();
  return stats;
}

core::SimResult run_profile(
    core::ConfigId id,
    std::shared_ptr<const WorkloadProfile> profile,
    const core::RunOptions& options) {
  RESPIN_REQUIRE(profile != nullptr, "run_profile needs a profile");
  const core::ClusterConfig config = core::make_cluster_config(
      id, options.size, options.cluster_cores, options.seed,
      core::CoreCalibration{}, /*first_core=*/0, options.tech);
  core::SimParams params;
  params.workload_scale = options.workload_scale;
  params.seed = options.seed;
  params.cycle_skip = options.cycle_skip;
  params.trace = options.trace;
  params.faults = options.faults;
  core::ClusterSim sim(
      config, profile->name,
      workload::synth_factory(profile, options.workload_scale, options.seed),
      params);
  if (config.governor == core::GovernorKind::kOracle) {
    return core::run_with_oracle(
        sim, core::OracleParams{.stride = options.oracle_stride});
  }
  sim.run();
  return sim.result();
}

}  // namespace respin::trace::fit
