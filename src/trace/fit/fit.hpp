// Trace fitting: measure a decoded trace into a workload::WorkloadProfile
// and drive the synthesis side (profile JSON serde, trace synthesis, and
// the profile-backed experiment runner the serving layer uses).
//
// fit_trace measures, per thread and aggregated:
//   - read/write mix and memory intensity (mem ops per instruction),
//   - the exact LRU stack-distance (reuse-distance) histogram over
//     64-byte lines, via the classic last-access + Fenwick-tree counting
//     algorithm (O(n log n), exact — not sampled),
//   - the sharing fraction (accesses to lines touched by >= 2 threads)
//     and the distinct shared-line count,
//   - windowed phase structure (instruction-equal windows, each with its
//     own mix/intensity/IPC).
//
// The profile is a plain value: serialize it with profile_to_json (the
// canonical JSON form `respin_trace fit --out` writes), regenerate a
// matching workload with workload::synth_factory, or run it through any
// configuration with run_profile. Determinism: fit is a pure function of
// the trace bytes; synthesis is a pure function of (profile, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "obs/json.hpp"
#include "trace/reader.hpp"
#include "workload/synth.hpp"

namespace respin::trace::fit {

struct FitOptions {
  /// Phase windows the trace is split into (by instruction count).
  /// Streams shorter than the window count collapse to fewer phases.
  std::size_t windows = 8;
};

/// Measures `data` into a profile (see file comment). Throws TraceError
/// (kMismatch) when the trace holds no memory accesses — there is nothing
/// to fit.
workload::WorkloadProfile fit_trace(const TraceData& data,
                                    const FitOptions& options = {});

/// Canonical JSON form (versioned, fixed field order; doubles use the
/// obs::json shortest-round-trip text, so serialize -> parse -> serialize
/// is byte-stable).
obs::json::Value profile_to_json(const workload::WorkloadProfile& profile);

/// Parses profile_to_json output (or a hand-written profile). Throws
/// obs::json::Error on missing/mistyped fields and std::logic_error on
/// values synthesis cannot use.
workload::WorkloadProfile profile_from_json(const obs::json::Value& value);

/// File forms of the above. load_profile throws TraceError(kIo) when the
/// file cannot be read.
void save_profile(const workload::WorkloadProfile& profile,
                  const std::string& path);
workload::WorkloadProfile load_profile(const std::string& path);

struct SynthStats {
  std::uint64_t ops = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t instructions = 0;
};

/// Drains a synthesized workload into a native .rspt trace at `path`
/// (the synth counterpart of trace::record_benchmark): thread_count
/// threads, every phase budget scaled by `scale`, instance selected by
/// `seed`. The result replays bit-identically like any recorded trace.
SynthStats synthesize_trace(const workload::WorkloadProfile& profile,
                            std::uint32_t thread_count, double scale,
                            std::uint64_t seed, const std::string& path);

/// Runs a profile-backed workload through configuration `id` exactly as
/// core::run_experiment runs a catalog benchmark (oracle dispatch, fault
/// plans and tech overrides included); options.cluster_cores sets the
/// synthesized thread count.
core::SimResult run_profile(core::ConfigId id,
                            std::shared_ptr<const workload::WorkloadProfile>
                                profile,
                            const core::RunOptions& options = {});

}  // namespace respin::trace::fit
