// Streaming binary trace reader.
//
// TraceReader validates the header on open and then yields CRC-verified
// chunks one at a time (constant memory in the file size apart from one
// chunk payload); decode_chunk turns a chunk into workload::Op /
// ifetch-address records, carrying per-thread delta state; load_trace
// composes the two into the fully decoded in-memory TraceData that the
// replay frontend executes. All failure paths throw TraceError — see
// format.hpp for the taxonomy.
#pragma once

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "workload/workload.hpp"

namespace respin::trace {

/// One CRC-verified chunk, still encoded.
struct Chunk {
  std::uint32_t thread = 0;
  StreamKind kind = StreamKind::kOps;
  std::uint32_t record_count = 0;
  std::vector<std::uint8_t> payload;
};

/// One thread's decoded streams.
struct ThreadTrace {
  std::vector<workload::Op> ops;      ///< Without the trailing kFinished.
  std::vector<mem::Addr> ifetch;
  std::uint64_t instructions = 0;     ///< Sum of op instruction counts.
};

/// A fully decoded trace: what the replay frontend executes.
struct TraceData {
  TraceHeader header;
  std::vector<ThreadTrace> threads;

  std::uint64_t total_ops() const;
  std::uint64_t total_ifetches() const;
  std::uint64_t total_instructions() const;
};

/// Per-thread decode state mirroring TraceWriter's delta encoder; persists
/// across chunks of the same thread.
struct DecodeState {
  mem::Addr last_data_addr = 0;
  std::uint64_t expected_barrier_id = 0;
  mem::Addr last_ifetch_addr = 0;
  double current_ipc = 0.0;
  bool ipc_known = false;
};

/// Decodes one chunk into `out`, updating `state`. Throws
/// TraceError(kBadRecord) on unknown tags, varint overruns, a compute
/// record before any kSetIpc, or a record-count mismatch.
void decode_chunk(const Chunk& chunk, DecodeState& state, ThreadTrace& out);

class TraceReader {
 public:
  /// Opens `path` and validates magic, version, bounds and header CRC.
  explicit TraceReader(const std::string& path);

  const TraceHeader& header() const { return header_; }

  /// Reads the next chunk; returns false at the end marker. Throws
  /// TraceError on truncation, CRC mismatch or malformed chunk framing.
  bool next_chunk(Chunk& out);

  /// Input-iterator view over the remaining chunks, so callers can write
  /// `for (const Chunk& c : reader) ...`.
  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Chunk;
    using difference_type = std::ptrdiff_t;
    using pointer = const Chunk*;
    using reference = const Chunk&;

    iterator() = default;
    explicit iterator(TraceReader* reader) : reader_(reader) { ++(*this); }

    reference operator*() const { return chunk_; }
    pointer operator->() const { return &chunk_; }
    iterator& operator++() {
      if (reader_ != nullptr && !reader_->next_chunk(chunk_)) {
        reader_ = nullptr;
      }
      return *this;
    }
    void operator++(int) { ++(*this); }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.reader_ == b.reader_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    TraceReader* reader_ = nullptr;
    Chunk chunk_;
  };

  iterator begin() { return iterator(this); }
  iterator end() { return iterator(); }

 private:
  std::ifstream is_;
  std::string path_;
  TraceHeader header_;
  bool at_end_ = false;
};

/// Reads and decodes a whole trace file.
TraceData load_trace(const std::string& path);

}  // namespace respin::trace
