// Energy accounting (McPAT + SESC activity-model substitute).
//
// The simulator counts events (instructions, cache reads/writes, coherence
// messages, DRAM accesses, domain crossings) and integrates structure
// leakage over simulated time. A PowerModel — built by the configuration
// layer from the nvsim array figures and the technology voltage-scaling
// laws — converts both into picojoules, split into the categories the
// paper's figures report (core vs cache, leakage vs dynamic).
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace respin::power {

/// Per-event energies and per-structure leakage powers for one
/// architecture configuration. All dynamic entries are picojoules per
/// event at the structure's operating voltage; leakage entries are watts.
struct PowerModel {
  // Cores (per core, at the core rail voltage).
  double core_instruction_pj = 0.0;  ///< Dynamic energy per instruction.
  double core_leakage_w = 0.0;       ///< Per powered-on core.
  /// Residual leakage of a power-gated core as a fraction of its on-state
  /// leakage (sleep transistors do not cut leakage to zero).
  double gated_leakage_fraction = 0.15;
  std::uint32_t core_count = 16;     ///< Cores sharing the rail (cluster).
  /// Dynamic floor while a core is on but stalled/idle, as a fraction of
  /// the full-rate instruction power (clock tree, bypass, fetch attempts).
  double core_idle_fraction = 0.25;

  // L1 (whole cluster: shared arrays, or the sum of the private ones).
  double l1_read_pj = 0.0;
  double l1_write_pj = 0.0;
  double l1_leakage_w = 0.0;
  /// Hybrid L1D only: per-access energies of the SRAM way class. Accesses
  /// counted in ActivityCounts::l1_sram_* are re-priced from the default
  /// (NVM) l1_read_pj/l1_write_pj to these. Both 0 on pure arrays.
  double l1_sram_read_pj = 0.0;
  double l1_sram_write_pj = 0.0;

  // Cluster L2 slice.
  double l2_read_pj = 0.0;
  double l2_write_pj = 0.0;
  double l2_leakage_w = 0.0;

  // L3 slice backing this cluster.
  double l3_read_pj = 0.0;
  double l3_write_pj = 0.0;
  double l3_leakage_w = 0.0;

  double dram_access_pj = 2000.0;   ///< Off-chip access (row + I/O).
  double coherence_message_pj = 4.0;///< One NoC hop + directory update.
  double level_shifter_pj = 0.08;   ///< One low->high domain crossing.
  double uncore_w = 0.0;            ///< PLL, clock spine, power controller.
};

/// Raw event counts accumulated by a simulation (deltas are well-defined,
/// so epochs subtract two snapshots).
struct ActivityCounts {
  std::uint64_t instructions = 0;
  std::uint64_t core_busy_cycles = 0;  ///< Core cycles spent executing.
  std::uint64_t core_idle_cycles = 0;  ///< Powered-on but stalled/idle.
  std::uint64_t l1_reads = 0;
  std::uint64_t l1_writes = 0;
  /// Subset of l1_reads / l1_writes that landed in the SRAM way class of a
  /// hybrid L1D (always 0 on pure arrays).
  std::uint64_t l1_sram_reads = 0;
  std::uint64_t l1_sram_writes = 0;
  std::uint64_t l2_reads = 0;
  std::uint64_t l2_writes = 0;
  std::uint64_t l3_reads = 0;
  std::uint64_t l3_writes = 0;
  std::uint64_t dram_accesses = 0;
  std::uint64_t coherence_messages = 0;
  std::uint64_t level_shifter_crossings = 0;
  /// Integral of (powered-on cores) over time, in core-picoseconds.
  double core_on_ps = 0.0;

  ActivityCounts operator-(const ActivityCounts& rhs) const;
};

/// Energy split the way the paper's figures report it.
struct EnergyBreakdown {
  util::Picojoules core_dynamic = 0.0;
  util::Picojoules core_leakage = 0.0;
  util::Picojoules cache_dynamic = 0.0;
  util::Picojoules cache_leakage = 0.0;
  util::Picojoules dram = 0.0;
  util::Picojoules network = 0.0;

  util::Picojoules total() const {
    return core_dynamic + core_leakage + cache_dynamic + cache_leakage +
           dram + network;
  }
  util::Picojoules leakage() const { return core_leakage + cache_leakage; }
  util::Picojoules dynamic() const { return total() - leakage(); }
};

/// Converts counts + elapsed time into energy. `elapsed` covers the whole
/// interval; core leakage uses the core_on_ps integral (power-gated cores
/// drop to the residual gated fraction), while cache/uncore leakage runs
/// for the full interval (the shared hierarchy is never gated).
EnergyBreakdown compute_energy(const PowerModel& model,
                               const ActivityCounts& counts,
                               util::Picoseconds elapsed);

/// Energy-per-instruction in picojoules; returns +inf when no instructions
/// committed (an epoch where every thread is blocked).
double energy_per_instruction(const EnergyBreakdown& energy,
                              std::uint64_t instructions);

}  // namespace respin::power
