#include "power/energy.hpp"

#include <algorithm>
#include <limits>

namespace respin::power {

ActivityCounts ActivityCounts::operator-(const ActivityCounts& rhs) const {
  ActivityCounts d;
  d.instructions = instructions - rhs.instructions;
  d.core_busy_cycles = core_busy_cycles - rhs.core_busy_cycles;
  d.core_idle_cycles = core_idle_cycles - rhs.core_idle_cycles;
  d.l1_reads = l1_reads - rhs.l1_reads;
  d.l1_writes = l1_writes - rhs.l1_writes;
  d.l1_sram_reads = l1_sram_reads - rhs.l1_sram_reads;
  d.l1_sram_writes = l1_sram_writes - rhs.l1_sram_writes;
  d.l2_reads = l2_reads - rhs.l2_reads;
  d.l2_writes = l2_writes - rhs.l2_writes;
  d.l3_reads = l3_reads - rhs.l3_reads;
  d.l3_writes = l3_writes - rhs.l3_writes;
  d.dram_accesses = dram_accesses - rhs.dram_accesses;
  d.coherence_messages = coherence_messages - rhs.coherence_messages;
  d.level_shifter_crossings =
      level_shifter_crossings - rhs.level_shifter_crossings;
  d.core_on_ps = core_on_ps - rhs.core_on_ps;
  return d;
}

EnergyBreakdown compute_energy(const PowerModel& model,
                               const ActivityCounts& counts,
                               util::Picoseconds elapsed) {
  EnergyBreakdown e;

  const auto n = [](std::uint64_t v) { return static_cast<double>(v); };

  // Core dynamic: full-rate energy per instruction while executing, plus an
  // idle floor while on but stalled. Idle cycles are charged as a fraction
  // of the per-cycle executing energy (approximated by instructions/busy).
  e.core_dynamic = n(counts.instructions) * model.core_instruction_pj;
  if (counts.core_busy_cycles > 0) {
    const double pj_per_busy_cycle =
        n(counts.instructions) * model.core_instruction_pj /
        n(counts.core_busy_cycles);
    e.core_dynamic += n(counts.core_idle_cycles) * pj_per_busy_cycle *
                      model.core_idle_fraction;
  }

  // Core leakage follows the powered-on integral (consolidation gates it);
  // gated cores keep leaking at the residual fraction.
  const double total_core_ps =
      static_cast<double>(model.core_count) * static_cast<double>(elapsed);
  const double off_ps = std::max(0.0, total_core_ps - counts.core_on_ps);
  e.core_leakage = model.core_leakage_w *
                   (counts.core_on_ps + model.gated_leakage_fraction * off_ps);

  e.cache_dynamic = n(counts.l1_reads) * model.l1_read_pj +
                    n(counts.l1_writes) * model.l1_write_pj +
                    n(counts.l2_reads) * model.l2_read_pj +
                    n(counts.l2_writes) * model.l2_write_pj +
                    n(counts.l3_reads) * model.l3_read_pj +
                    n(counts.l3_writes) * model.l3_write_pj;
  // Hybrid L1D: re-price the accesses that landed in the SRAM way class
  // from the default NVM energies to the SRAM slice's. Pure arrays never
  // count l1_sram_* accesses, so this block is exactly zero for them.
  if (counts.l1_sram_reads > 0 || counts.l1_sram_writes > 0) {
    e.cache_dynamic +=
        n(counts.l1_sram_reads) *
            (model.l1_sram_read_pj - model.l1_read_pj) +
        n(counts.l1_sram_writes) *
            (model.l1_sram_write_pj - model.l1_write_pj);
  }

  const double elapsed_ps = static_cast<double>(elapsed);
  e.cache_leakage = (model.l1_leakage_w + model.l2_leakage_w +
                     model.l3_leakage_w) *
                    elapsed_ps;

  e.dram = n(counts.dram_accesses) * model.dram_access_pj;
  e.network = n(counts.coherence_messages) * model.coherence_message_pj +
              n(counts.level_shifter_crossings) * model.level_shifter_pj +
              model.uncore_w * elapsed_ps;
  return e;
}

double energy_per_instruction(const EnergyBreakdown& energy,
                              std::uint64_t instructions) {
  if (instructions == 0) return std::numeric_limits<double>::infinity();
  return energy.total() / static_cast<double>(instructions);
}

}  // namespace respin::power
