// Consolidation lab: watch the virtual-core machinery at work. Runs one
// benchmark under the greedy hardware governor, the oracle, and the
// OS-driven variant, prints the active-core traces side by side, and
// summarizes the energy each mechanism recovers (paper §III, Figs. 12-14).
//
//   $ ./examples/consolidation_lab [benchmark]    (default: radix)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace {

// Resamples a consolidation trace onto `slots` time buckets.
std::vector<int> resample(const std::vector<respin::core::ConsolidationSample>&
                              trace,
                          std::int64_t total_cycles, int slots) {
  std::vector<int> out(slots, -1);
  for (const auto& sample : trace) {
    const int slot = static_cast<int>(
        std::min<std::int64_t>(slots - 1,
                               sample.cycle * slots / std::max<std::int64_t>(
                                                          1, total_cycles)));
    out[slot] = static_cast<int>(sample.active_cores);
  }
  int last = 16;
  for (int& v : out) {
    if (v < 0) v = last;
    last = v;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace respin;

  const std::string benchmark = argc > 1 ? argv[1] : "radix";
  std::printf("Respin consolidation lab: benchmark '%s'\n\n",
              benchmark.c_str());

  core::RunOptions options;
  const core::SimResult baseline =
      core::run_experiment(core::ConfigId::kPrSramNt, benchmark, options);
  const core::SimResult plain =
      core::run_experiment(core::ConfigId::kShStt, benchmark, options);
  const core::SimResult greedy =
      core::run_experiment(core::ConfigId::kShSttCc, benchmark, options);
  const core::SimResult oracle =
      core::run_experiment(core::ConfigId::kShSttCcOracle, benchmark, options);
  const core::SimResult os =
      core::run_experiment(core::ConfigId::kShSttCcOs, benchmark, options);

  constexpr int kSlots = 64;
  const auto greedy_trace = resample(greedy.trace, greedy.cycles, kSlots);
  const auto oracle_trace = resample(oracle.trace, oracle.cycles, kSlots);

  std::printf("Active cores over normalized runtime (each column ~1/%d of "
              "the run):\n\n", kSlots);
  for (int level = 16; level >= 4; level -= 2) {
    std::printf("  %2d |", level);
    for (int s = 0; s < kSlots; ++s) {
      std::printf("%c", greedy_trace[s] >= level ? '#' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("     +%s+  SH-STT-CC (greedy)\n\n",
              std::string(kSlots, '-').c_str());
  for (int level = 16; level >= 4; level -= 2) {
    std::printf("  %2d |", level);
    for (int s = 0; s < kSlots; ++s) {
      std::printf("%c", oracle_trace[s] >= level ? '#' : ' ');
    }
    std::printf("|\n");
  }
  std::printf("     +%s+  SH-STT-CC-Oracle\n\n",
              std::string(kSlots, '-').c_str());

  util::TextTable table("Consolidation mechanisms compared");
  table.set_header({"config", "avg cores", "range", "time vs SH-STT",
                    "energy vs baseline"});
  auto add = [&](const char* name, const core::SimResult& r) {
    table.add_row({name, util::fixed(r.avg_active_cores, 1),
                   std::to_string(r.min_active_cores) + ".." +
                       std::to_string(r.max_active_cores),
                   util::percent(r.seconds / plain.seconds - 1.0),
                   util::percent(r.energy.total() / baseline.energy.total() -
                                 1.0)});
  };
  add("SH-STT (no consolidation)", plain);
  add("SH-STT-CC (greedy HW)", greedy);
  add("SH-STT-CC-Oracle", oracle);
  add("SH-STT-CC-OS (coarse epochs)", os);
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "The hardware governor reshapes the active-core count per program\n"
      "phase at almost no cost because the shared L1 keeps every thread's\n"
      "data warm across migrations; the OS variant pays coarse timeslices\n"
      "that starve barrier-critical threads (paper §V.C).\n");
  return 0;
}
