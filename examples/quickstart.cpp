// Quickstart: simulate one benchmark on the baseline near-threshold CMP
// and on Respin's shared STT-RAM design, then compare time, power and
// energy — the smallest end-to-end use of the library.
//
//   $ ./examples/quickstart [benchmark]     (default: ocean)
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace respin;

  const std::string benchmark = argc > 1 ? argv[1] : "ocean";
  core::RunOptions options;  // 16-core cluster, medium caches.

  std::printf("Respin quickstart: benchmark '%s', 16-core cluster\n\n",
              benchmark.c_str());

  const core::SimResult baseline = core::run_experiment(
      core::ConfigId::kPrSramNt, benchmark, options);
  const core::SimResult respin_result = core::run_experiment(
      core::ConfigId::kShStt, benchmark, options);

  util::TextTable table("PR-SRAM-NT (baseline) vs SH-STT (Respin)");
  table.set_header({"metric", "PR-SRAM-NT", "SH-STT", "change"});
  auto add = [&](const char* name, double base, double ours, int places) {
    table.add_row({name, util::fixed(base, places), util::fixed(ours, places),
                   util::percent(ours / base - 1.0)});
  };
  add("runtime (ms)", baseline.seconds * 1e3, respin_result.seconds * 1e3, 3);
  add("energy (mJ)", baseline.energy.total() * 1e-9,
      respin_result.energy.total() * 1e-9, 2);
  add("power (W)", baseline.watts(), respin_result.watts(), 2);
  add("EPI (nJ)", baseline.epi_pj() * 1e-3, respin_result.epi_pj() * 1e-3, 2);
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Shared-L1 behaviour under SH-STT: %.1f%% of read hits serviced in a "
      "single core cycle, %llu half-misses.\n",
      100.0 * respin_result.read_hit_latency.fraction(1),
      static_cast<unsigned long long>(respin_result.dl1_half_misses));
  return 0;
}
