// Cluster explorer: how does the cluster size change the behaviour of the
// time-multiplexed shared cache? Sweeps 4/8/16/32 cores per cluster for a
// chosen benchmark and reports performance, contention, and the half-miss
// protocol in action (paper §II.A and §V.D/E).
//
//   $ ./examples/cluster_explorer [benchmark]     (default: raytrace)
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace respin;

  const std::string benchmark = argc > 1 ? argv[1] : "raytrace";
  std::printf("Respin cluster explorer: benchmark '%s'\n\n", benchmark.c_str());

  util::TextTable table("Shared-cache behaviour vs cluster size (SH-STT)");
  table.set_header({"cluster", "shared L1", "time vs baseline", "1-cycle hits",
                    "half-misses", "avg arrivals/cycle"});

  for (std::uint32_t cores : {4u, 8u, 16u, 32u}) {
    core::RunOptions options;
    options.cluster_cores = cores;
    const core::SimResult baseline =
        core::run_experiment(core::ConfigId::kPrSramNt, benchmark, options);
    const core::SimResult stt =
        core::run_experiment(core::ConfigId::kShStt, benchmark, options);

    const std::uint64_t reads = stt.dl1_read_hits + stt.dl1_read_misses;
    table.add_row(
        {std::to_string(cores) + " cores",
         std::to_string(16 * cores) + "KB",
         util::percent(stt.seconds / baseline.seconds - 1.0),
         util::fixed(100.0 * stt.read_hit_latency.fraction(1), 1) + "%",
         util::fixed(100.0 * stt.dl1_half_misses /
                         std::max<std::uint64_t>(1, reads), 2) + "%",
         util::fixed(stt.dl1_arrivals.mean(), 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The 16-core cluster maximizes data sharing while the single-ported\n"
      "fast cache still returns almost every read hit within one core\n"
      "cycle; at 32 cores the bigger, slower array and doubled request\n"
      "rate erode the benefit (paper §V.D).\n");
  return 0;
}
