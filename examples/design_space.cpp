// Design-space study: what would this chip look like with other cache
// technologies and rails? Uses the nvsim array model directly to sweep the
// L1 design space the paper argues about in §II, then confirms the two
// interesting corners with full simulations.
//
//   $ ./examples/design_space [benchmark]        (default: fft)
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "nvsim/array_model.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace respin;

  const std::string benchmark = argc > 1 ? argv[1] : "fft";
  std::printf("Respin design-space study (L1 = 256KB per 16-core cluster)\n\n");

  // 1. Static array-level view straight from the nvsim model.
  util::TextTable arrays("Candidate shared-L1 arrays (nvsim model)");
  arrays.set_header({"technology", "Vdd", "read (ps)", "write (ps)",
                     "read (pJ)", "leakage (mW)", "area (mm2)"});
  struct Candidate {
    nvsim::MemTech tech;
    double vdd;
  };
  for (const Candidate& c :
       {Candidate{nvsim::MemTech::kSram, 0.65},
        Candidate{nvsim::MemTech::kSram, 0.8},
        Candidate{nvsim::MemTech::kSram, 1.0},
        Candidate{nvsim::MemTech::kSttRam, 1.0}}) {
    const nvsim::ArrayFigures f = nvsim::evaluate(
        nvsim::ArrayConfig{.tech = c.tech,
                           .capacity_bytes = 256 * 1024,
                           .block_bytes = 32,
                           .associativity = 4,
                           .vdd = c.vdd,
                           .bank_count = 1});
    arrays.add_row({nvsim::to_string(c.tech), util::fixed(c.vdd, 2),
                    std::to_string(f.read_latency),
                    std::to_string(f.write_latency),
                    util::fixed(f.read_energy, 2),
                    util::fixed(f.leakage_power * 1e3, 0),
                    util::fixed(f.area_mm2, 3)});
  }
  std::printf("%s\n", arrays.render().c_str());

  // 2. System-level confirmation on one benchmark: the STT-RAM design
  //    turns the leakage advantage into end-to-end energy, across all
  //    three Table I size classes.
  util::TextTable system("System-level energy, benchmark '" + benchmark +
                         "' (normalized to PR-SRAM-NT)");
  system.set_header({"cache size", "SH-SRAM-Nom", "SH-STT"});
  for (core::CacheSize size :
       {core::CacheSize::kSmall, core::CacheSize::kMedium,
        core::CacheSize::kLarge}) {
    core::RunOptions options;
    options.size = size;
    const double base =
        core::run_experiment(core::ConfigId::kPrSramNt, benchmark, options)
            .energy.total();
    const double nom =
        core::run_experiment(core::ConfigId::kShSramNom, benchmark, options)
            .energy.total();
    const double stt =
        core::run_experiment(core::ConfigId::kShStt, benchmark, options)
            .energy.total();
    system.add_row({core::to_string(size), util::fixed(nom / base, 3),
                    util::fixed(stt / base, 3)});
  }
  std::printf("%s\n", system.render().c_str());

  std::printf(
      "STT-RAM is the only candidate that can sit on the nominal rail\n"
      "(fast, reliable reads for the time-multiplexed cluster cache) while\n"
      "leaking ~7.7x less than SRAM — the larger the cache budget, the\n"
      "wider its energy lead (paper Figs. 6/8).\n");
  return 0;
}
