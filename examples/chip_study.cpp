// Chip study: the full 64-core CMP with process variation. Each of the
// four clusters sits on a different region of the VARIUS die, so their
// core-frequency mixes — and therefore their finish times and energies —
// differ. This example quantifies that spread and shows the chip-level
// cost of the slowest cluster (the paper's motivation for per-core clock
// multipliers instead of chip-wide worst-case frequency).
//
//   $ ./examples/chip_study [benchmark] [seed]   (default: barnes, 1)
#include <cstdio>
#include <string>

#include "core/chip.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace respin;

  const std::string benchmark = argc > 1 ? argv[1] : "barnes";
  core::RunOptions options;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  std::printf("Respin chip study: 64-core CMP, benchmark '%s', die seed %llu\n\n",
              benchmark.c_str(),
              static_cast<unsigned long long>(options.seed));

  const core::ChipResult chip =
      core::run_chip(core::ConfigId::kShStt, benchmark, options);

  util::TextTable table("Per-cluster behaviour across the die");
  table.set_header({"cluster", "multipliers (fast..slow)", "time (ms)",
                    "energy (mJ)", "vs fastest cluster"});
  double fastest = chip.clusters[0].seconds;
  for (const auto& r : chip.clusters) fastest = std::min(fastest, r.seconds);

  for (std::size_t c = 0; c < chip.clusters.size(); ++c) {
    const auto config = core::make_chip_cluster_config(
        core::ConfigId::kShStt, options.size, options.cluster_cores,
        static_cast<std::uint32_t>(c), options.seed);
    int counts[7] = {};
    for (int m : config.multipliers) ++counts[m];
    std::string mix;
    for (int m = 4; m <= 6; ++m) {
      mix += std::to_string(counts[m]) + "x" +
             util::fixed(util::to_ns(config.clocking.core_period(m)), 1) +
             "ns ";
    }
    const auto& r = chip.clusters[c];
    table.add_row({std::to_string(c), mix, util::fixed(r.seconds * 1e3, 3),
                   util::fixed(r.energy.total() * 1e-9, 1),
                   util::percent(r.seconds / fastest - 1.0)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Chip: time %.3f ms (slowest cluster), energy %.1f mJ, "
              "power %.1f W\n",
              chip.seconds * 1e3, chip.energy.total() * 1e-9, chip.watts());
  std::printf("CSV:  %s\n      %s\n", core::chip_csv_header().c_str(),
              core::chip_csv_row(chip).c_str());
  return 0;
}
